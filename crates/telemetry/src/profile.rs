//! The `insomnia profile` backend: parse a telemetry sidecar, render the
//! phase-breakdown table, and expose the deterministic counter totals the
//! CI drift gate compares.

use crate::counters::RunCounters;
use crate::record::{
    JobTelemetryRecord, ManifestRecord, PhaseRecord, SummaryRecord, TelemetryRecord,
};
use serde::{Deserialize, Serialize};

/// The deterministic subset of a sidecar's summary: everything here is
/// byte-identical at any thread count, which is what lets CI `cmp` the
/// serialized form against a committed golden file while wall-clock and
/// RSS vary freely run to run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CounterTotals {
    /// Jobs completed.
    pub jobs: usize,
    /// `(repetition × shard)` tasks completed.
    pub tasks: u64,
    /// Events delivered over the whole batch.
    pub events: u64,
    /// Trace flows over the whole batch.
    pub flows: u64,
    /// Merged counters.
    pub counters: RunCounters,
}

/// A parsed sidecar, reduced to what the profile table renders.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// The run manifest, when the sidecar has one.
    pub manifest: Option<ManifestRecord>,
    /// Phase spans, in sidecar order.
    pub phases: Vec<PhaseRecord>,
    /// Per-job records, in sidecar order.
    pub jobs: Vec<JobTelemetryRecord>,
    /// The run summary, when the sidecar has one.
    pub summary: Option<SummaryRecord>,
    /// Task records seen (individual records are folded, not retained).
    pub n_tasks: u64,
    /// Smallest per-task event count (0 when no tasks).
    pub task_events_min: u64,
    /// Largest per-task event count.
    pub task_events_max: u64,
    /// Events summed over task records (mean = sum / n_tasks).
    task_events_sum: u64,
}

impl ProfileReport {
    /// Parses a sidecar's JSONL text. Unknown record types are an error
    /// (the schema is versioned); blank lines are skipped.
    pub fn from_jsonl(text: &str) -> Result<ProfileReport, String> {
        let mut report = ProfileReport {
            manifest: None,
            phases: Vec::new(),
            jobs: Vec::new(),
            summary: None,
            n_tasks: 0,
            task_events_min: u64::MAX,
            task_events_max: 0,
            task_events_sum: 0,
        };
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let rec: TelemetryRecord =
                serde_json::from_str(line).map_err(|e| format!("telemetry line {}: {e}", i + 1))?;
            match rec {
                TelemetryRecord::Manifest(m) => report.manifest = Some(m),
                TelemetryRecord::Task(t) => {
                    let ev = t.counters.delivered();
                    report.n_tasks += 1;
                    report.task_events_min = report.task_events_min.min(ev);
                    report.task_events_max = report.task_events_max.max(ev);
                    report.task_events_sum += ev;
                }
                TelemetryRecord::Job(j) => report.jobs.push(j),
                TelemetryRecord::Phase(p) => report.phases.push(p),
                TelemetryRecord::Summary(s) => report.summary = Some(s),
            }
        }
        if report.n_tasks == 0 {
            report.task_events_min = 0;
        }
        if report.summary.is_none() && report.jobs.is_empty() && report.phases.is_empty() {
            return Err(
                "no telemetry records found (is this a result JSONL, not a sidecar?)".to_string()
            );
        }
        Ok(report)
    }

    /// The deterministic counter totals (the CI drift gate's payload).
    pub fn counter_totals(&self) -> Result<CounterTotals, String> {
        let s = self.summary.as_ref().ok_or("sidecar has no summary record")?;
        Ok(CounterTotals {
            jobs: s.jobs,
            tasks: s.tasks,
            events: s.events,
            flows: s.flows,
            counters: s.counters,
        })
    }

    /// Fraction of the run's wall-clock attributed to named phase spans
    /// (`None` without a summary). Can exceed 1 when phases overlap across
    /// worker threads — busy time is summed per task, wall-clock is not.
    pub fn attributed_fraction(&self) -> Option<f64> {
        let wall = self.summary.as_ref()?.wall_ms;
        if wall <= 0.0 {
            return None;
        }
        Some(self.phases.iter().map(|p| p.busy_ms).sum::<f64>() / wall)
    }

    /// Renders the profile: manifest header, phase-breakdown table
    /// (busy share of wall-clock, events/s and flows/s, per-task spread),
    /// per-task event spread, and the deterministic counter taxonomy.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== run\n");
        if let Some(m) = &self.manifest {
            let scenarios: Vec<String> = m
                .scenarios
                .iter()
                .map(|s| format!("{} ({} shards x {} reps)", s.name, s.shards, s.repetitions))
                .collect();
            out.push_str(&format!(
                "scenarios: {}; schemes: {}; seeds {}; threads {}; jobs {}\n",
                scenarios.join(", "),
                m.schemes.join(","),
                m.seeds,
                m.threads,
                m.jobs,
            ));
        }
        if let Some(s) = &self.summary {
            let rss = match s.peak_rss_mib {
                Some(mib) => format!("{mib:.0} MiB"),
                None => "n/a".to_string(),
            };
            out.push_str(&format!(
                "wall-clock {:.1} s; peak RSS {}; {} events; {} flows; {} job(s), {} task(s)\n",
                s.wall_ms / 1_000.0,
                rss,
                s.events,
                s.flows,
                s.jobs,
                s.tasks,
            ));
        } else {
            // An absent summary means the producing run died before its
            // final record: every rate below would silently render as 0 /
            // "-". Say so instead of letting the zeros read as measurements.
            out.push_str(
                "warning: incomplete sidecar (no summary) — wall-clock shares, event/flow \
                 rates and counter totals are unavailable\n",
            );
        }

        out.push_str("\n== phases\n");
        out.push_str(&format!(
            "{:<12} {:>10} {:>7} {:>12} {:>12} {:>7}  {}\n",
            "phase", "busy [s]", "share", "events/s", "flows/s", "tasks", "task ms min/mean/max"
        ));
        let wall = self.summary.as_ref().map(|s| s.wall_ms).unwrap_or(0.0);
        let (events, flows) =
            self.summary.as_ref().map(|s| (s.events as f64, s.flows as f64)).unwrap_or((0.0, 0.0));
        for p in &self.phases {
            let busy_s = p.busy_ms / 1_000.0;
            let share = if wall > 0.0 {
                format!("{:.1}%", 100.0 * p.busy_ms / wall)
            } else {
                "-".to_string()
            };
            // Rates only where the phase does that work: the event loop
            // delivers events over arrived flows; world-build generates
            // the flows (stream setup replays every burst draw).
            let rate = |total: f64| {
                if busy_s > 0.0 && total > 0.0 {
                    format!("{:.0}", total / busy_s)
                } else {
                    "-".to_string()
                }
            };
            let (ev_rate, fl_rate) = match p.phase.as_str() {
                "event-loop" => (rate(events), rate(flows)),
                "world-build" => ("-".to_string(), rate(flows)),
                _ => ("-".to_string(), "-".to_string()),
            };
            let spread = if p.tasks == 0 {
                "-".to_string()
            } else {
                format!("{:.1}/{:.1}/{:.1}", p.task_ms_min, p.task_ms_mean, p.task_ms_max)
            };
            out.push_str(&format!(
                "{:<12} {:>10.2} {:>7} {:>12} {:>12} {:>7}  {}\n",
                p.phase, busy_s, share, ev_rate, fl_rate, p.tasks, spread
            ));
        }
        if let Some(frac) = self.attributed_fraction() {
            out.push_str(&format!(
                "attributed: {:.1}% of {:.1} s wall-clock in named phases\n",
                100.0 * frac,
                wall / 1_000.0,
            ));
        }

        if let Some(mean) = self.task_events_sum.checked_div(self.n_tasks) {
            out.push_str(&format!(
                "\n== per-task spread\nevents per task min/mean/max: {}/{}/{}\n",
                self.task_events_min, mean, self.task_events_max,
            ));
        }

        if let Some(s) = &self.summary {
            out.push_str("\n== deterministic counters\n");
            let c = &s.counters;
            let rows: [(&str, u64); 19] = [
                ("arrivals", c.arrivals),
                ("departures", c.departures),
                ("wake_dones", c.wake_dones),
                ("idle_checks", c.idle_checks),
                ("bh2_ticks", c.bh2_ticks),
                ("optimal_solves", c.optimal_solves),
                ("samples", c.samples),
                ("doze_ticks", c.doze_ticks),
                ("cancelled_departures", c.cancelled_departures),
                ("cancelled_idle_checks", c.cancelled_idle_checks),
                ("cancelled_doze_ticks", c.cancelled_doze_ticks),
                ("heap_pushes", c.heap_pushes),
                ("peak_heap", c.peak_heap),
                ("flows_total", c.flows_total),
                ("flows_completed", c.flows_completed),
                ("peak_active_flows", c.peak_active_flows),
                ("stream_refills", c.stream_refills),
                ("merge_pops", c.merge_pops),
                ("fold_absorptions", c.fold_absorptions),
            ];
            for (name, v) in rows {
                out.push_str(&format!("{name:<22} {v}\n"));
            }
            // Shard-major runs that reused prototype worlds across schemes
            // get a note quantifying the skipped setup passes; runs without
            // the cache (single scheme, eager worlds, job-major order, any
            // legacy sidecar) render exactly as before.
            if c.proto_cache_builds > 0 || c.proto_cache_hits > 0 {
                out.push_str(&format!(
                    "\nworld-reuse: {} prototype world build(s) served {} cached task \
                     setup(s) — the shard-major cross-scheme cache skipped that many \
                     FlowStream setup passes\n",
                    c.proto_cache_builds, c.proto_cache_hits,
                ));
            }
        }
        out
    }
}

/// Renders a before/after comparison of two sidecars (`insomnia profile A
/// B`): wall-clock, total events/flows, overall events/s and flows/s, and
/// the busy time of every phase present in both runs, each with its
/// relative change. Rates use each run's own wall-clock, so the table
/// answers "how much faster is B" in one read; a differing event or flow
/// total is flagged, since then the runs did different work and the rate
/// delta is not a pure speed comparison.
pub fn render_delta(a: &ProfileReport, b: &ProfileReport) -> Result<String, String> {
    let sa = a.summary.as_ref().ok_or("first sidecar has no summary record")?;
    let sb = b.summary.as_ref().ok_or("second sidecar has no summary record")?;
    let rate =
        |n: u64, wall_ms: f64| if wall_ms > 0.0 { n as f64 / (wall_ms / 1_000.0) } else { 0.0 };
    let delta = |old: f64, new: f64| {
        if old > 0.0 {
            format!("{:+.1}%", 100.0 * (new - old) / old)
        } else if new > 0.0 {
            // A zero baseline admits no percentage (the naive division
            // prints inf%); B's column already shows the absolute value, so
            // just flag that the metric appeared.
            "(was 0)".to_string()
        } else {
            "n/a".to_string()
        }
    };
    let mut out = String::new();
    out.push_str("== profile delta (A -> B)\n");
    out.push_str(&format!("{:<20} {:>14} {:>14} {:>9}\n", "metric", "A", "B", "delta"));
    let mut row = |name: &str, va: f64, vb: f64, fmt: fn(f64) -> String| {
        out.push_str(&format!(
            "{:<20} {:>14} {:>14} {:>9}\n",
            name,
            fmt(va),
            fmt(vb),
            delta(va, vb)
        ));
    };
    let secs = |v: f64| format!("{:.2} s", v / 1_000.0);
    let count = |v: f64| format!("{v:.0}");
    row("wall-clock", sa.wall_ms, sb.wall_ms, secs);
    row("events", sa.events as f64, sb.events as f64, count);
    row("flows", sa.flows as f64, sb.flows as f64, count);
    row("events/s", rate(sa.events, sa.wall_ms), rate(sb.events, sb.wall_ms), count);
    row("flows/s", rate(sa.flows, sa.wall_ms), rate(sb.flows, sb.wall_ms), count);
    for pa in &a.phases {
        if let Some(pb) = b.phases.iter().find(|p| p.phase == pa.phase) {
            row(&format!("{} [busy]", pa.phase), pa.busy_ms, pb.busy_ms, secs);
        }
    }
    if sa.events != sb.events || sa.flows != sb.flows {
        if sa.events == 0 || sb.events == 0 {
            out.push_str(
                "warning: one run reports zero delivered events — incomplete sidecar (summary \
                 written before any work?); its rates render as 0, not as measured speed\n",
            );
        } else {
            out.push_str(
                "warning: the runs did different amounts of work (event/flow totals differ); \
                 rate deltas are not a pure speed comparison\n",
            );
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{ManifestScenario, TaskRecord};

    fn sidecar() -> String {
        let counters = RunCounters {
            arrivals: 100,
            departures: 100,
            samples: 10,
            flows_total: 120,
            flows_completed: 100,
            peak_heap: 9,
            peak_active_flows: 5,
            fold_absorptions: 2,
            ..RunCounters::default()
        };
        let recs = vec![
            TelemetryRecord::Manifest(ManifestRecord {
                version: 1,
                scenarios: vec![ManifestScenario {
                    name: "smoke".into(),
                    shards: 2,
                    repetitions: 1,
                    n_clients: 272,
                }],
                schemes: vec!["soi".into()],
                seeds: 1,
                threads: 1,
                jobs: 1,
            }),
            TelemetryRecord::Task(TaskRecord {
                job: 0,
                scenario: "smoke".into(),
                scheme: "soi".into(),
                seed_index: 0,
                rep: 0,
                shard: 0,
                n_shards: 2,
                setup_ms: 5.0,
                loop_ms: 20.0,
                finished: 1,
                total: 2,
                merged: 0,
                fold_queue: 0,
                counters,
            }),
            TelemetryRecord::Job(JobTelemetryRecord {
                job: 0,
                scenario: "smoke".into(),
                scheme: "soi".into(),
                seed_index: 0,
                wall_ms: 50.0,
                fold_ms: 2.0,
                shards: 2,
                counters,
            }),
            TelemetryRecord::Phase(PhaseRecord {
                phase: "event-loop".into(),
                parent: "run".into(),
                busy_ms: 40.0,
                tasks: 2,
                task_ms_min: 15.0,
                task_ms_mean: 20.0,
                task_ms_max: 25.0,
            }),
            TelemetryRecord::Summary(SummaryRecord {
                wall_ms: 50.0,
                jobs: 1,
                tasks: 2,
                events: counters.delivered(),
                flows: counters.flows_total,
                peak_rss_mib: Some(24.0),
                counters,
            }),
        ];
        let mut text = String::new();
        for r in &recs {
            text.push_str(&serde_json::to_string(&r.to_value()).unwrap());
            text.push('\n');
        }
        text
    }

    #[test]
    fn parses_and_renders_a_sidecar() {
        let report = ProfileReport::from_jsonl(&sidecar()).unwrap();
        assert!(report.manifest.is_some());
        assert_eq!(report.jobs.len(), 1);
        assert_eq!(report.n_tasks, 1);
        assert_eq!(report.task_events_min, 210);
        let rendered = report.render();
        assert!(rendered.contains("event-loop"), "{rendered}");
        assert!(rendered.contains("peak RSS 24 MiB"), "{rendered}");
        assert!(rendered.contains("attributed: 80.0%"), "{rendered}");
        assert!(rendered.contains("fold_absorptions       2"), "{rendered}");
        // No prototype-cache activity in this sidecar: the world-reuse note
        // must stay absent so legacy renders are unchanged.
        assert!(!rendered.contains("world-reuse"), "{rendered}");
    }

    #[test]
    fn world_reuse_note_appears_with_proto_cache_activity() {
        let mut report = ProfileReport::from_jsonl(&sidecar()).unwrap();
        let c = &mut report.summary.as_mut().unwrap().counters;
        c.proto_cache_builds = 2;
        c.proto_cache_hits = 4;
        let rendered = report.render();
        assert!(
            rendered.contains("world-reuse: 2 prototype world build(s) served 4 cached task"),
            "{rendered}"
        );
    }

    #[test]
    fn counter_totals_are_the_deterministic_subset() {
        let report = ProfileReport::from_jsonl(&sidecar()).unwrap();
        let totals = report.counter_totals().unwrap();
        assert_eq!(totals.events, 210);
        assert_eq!(totals.flows, 120);
        let json = serde_json::to_string(&totals).unwrap();
        assert!(json.starts_with("{\"jobs\":1,\"tasks\":2,\"events\":210,\"flows\":120"), "{json}");
        assert!(!json.contains("wall"), "no wall-clock in the drift payload: {json}");
        assert!(!json.contains("rss"), "no RSS in the drift payload: {json}");
    }

    #[test]
    fn delta_reports_rates_and_matching_phases() {
        let a = ProfileReport::from_jsonl(&sidecar()).unwrap();
        // B: same work, half the wall-clock and event-loop busy time.
        let mut b = a.clone();
        let sb = b.summary.as_mut().unwrap();
        sb.wall_ms = 25.0;
        b.phases[0].busy_ms = 20.0;
        let rendered = render_delta(&a, &b).unwrap();
        assert!(rendered.contains("wall-clock"), "{rendered}");
        assert!(rendered.contains("+100.0%"), "events/s doubles: {rendered}");
        assert!(rendered.contains("event-loop [busy]"), "{rendered}");
        assert!(rendered.contains("-50.0%"), "busy halves: {rendered}");
        assert!(!rendered.contains("warning"), "identical work, no warning: {rendered}");

        // Different totals flag the comparison.
        b.summary.as_mut().unwrap().events += 1;
        let rendered = render_delta(&a, &b).unwrap();
        assert!(rendered.contains("warning"), "{rendered}");

        // A summary-less sidecar cannot be compared.
        let mut c = a.clone();
        c.summary = None;
        assert!(render_delta(&a, &c).is_err());
    }

    #[test]
    fn summaryless_sidecar_warns_instead_of_rendering_zero_rates() {
        // Keep only the records preceding the summary: a run that died
        // mid-batch leaves exactly this shape behind.
        let truncated: String = sidecar()
            .lines()
            .filter(|l| !l.contains("\"summary\""))
            .map(|l| [l, "\n"].concat())
            .collect();
        let report = ProfileReport::from_jsonl(&truncated).unwrap();
        assert!(report.summary.is_none());
        let rendered = report.render();
        assert!(rendered.contains("incomplete sidecar (no summary)"), "{rendered}");
        // The complete sidecar must not carry the warning.
        let full = ProfileReport::from_jsonl(&sidecar()).unwrap().render();
        assert!(!full.contains("incomplete sidecar"), "{full}");
    }

    #[test]
    fn delta_zero_baseline_renders_was_zero_not_inf() {
        let a = ProfileReport::from_jsonl(&sidecar()).unwrap();
        let mut b = a.clone();
        // A metric absent in A, present in B: flows 0 -> 120.
        let mut a0 = a.clone();
        a0.summary.as_mut().unwrap().flows = 0;
        let rendered = render_delta(&a0, &b).unwrap();
        assert!(rendered.contains("(was 0)"), "{rendered}");
        assert!(!rendered.contains("inf"), "{rendered}");
        assert!(!rendered.contains("NaN"), "{rendered}");

        // Zero on both sides stays n/a.
        b.summary.as_mut().unwrap().flows = 0;
        let rendered = render_delta(&a0, &b).unwrap();
        assert!(rendered.contains("n/a"), "{rendered}");
    }

    #[test]
    fn delta_flags_zero_event_runs_as_incomplete() {
        let a = ProfileReport::from_jsonl(&sidecar()).unwrap();
        let mut b = a.clone();
        b.summary.as_mut().unwrap().events = 0;
        let rendered = render_delta(&a, &b).unwrap();
        assert!(rendered.contains("incomplete sidecar"), "{rendered}");
    }

    #[test]
    fn rejects_non_sidecar_input() {
        assert!(ProfileReport::from_jsonl("").is_err());
        assert!(ProfileReport::from_jsonl("{\"scenario\":\"x\"}\n").is_err());
    }
}
