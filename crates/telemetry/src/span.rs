//! Phase-span accumulation: busy time per named phase, with the per-task
//! spread the profile table reports.

use crate::record::PhaseRecord;

/// Accumulates one phase's contributions (`add` once per task, job or
/// write call) into the busy total plus min/mean/max spread.
///
/// Wall-clock is inherently scheduling-dependent, so accumulators live in
/// sidecar records only — never in the deterministic result JSONL.
#[derive(Debug, Clone)]
pub struct PhaseAccum {
    name: &'static str,
    busy_ms: f64,
    tasks: u64,
    min_ms: f64,
    max_ms: f64,
}

impl PhaseAccum {
    /// An empty accumulator for the named phase.
    pub fn new(name: &'static str) -> PhaseAccum {
        PhaseAccum { name, busy_ms: 0.0, tasks: 0, min_ms: f64::INFINITY, max_ms: 0.0 }
    }

    /// Adds one contribution of `ms` milliseconds.
    pub fn add(&mut self, ms: f64) {
        self.busy_ms += ms;
        self.tasks += 1;
        self.min_ms = self.min_ms.min(ms);
        self.max_ms = self.max_ms.max(ms);
    }

    /// Busy milliseconds accumulated so far.
    pub fn busy_ms(&self) -> f64 {
        self.busy_ms
    }

    /// Contributions accumulated so far.
    pub fn tasks(&self) -> u64 {
        self.tasks
    }

    /// Freezes the accumulator into its sidecar record.
    pub fn record(&self) -> PhaseRecord {
        PhaseRecord {
            phase: self.name.to_string(),
            parent: "run".to_string(),
            busy_ms: self.busy_ms,
            tasks: self.tasks,
            task_ms_min: if self.tasks == 0 { 0.0 } else { self.min_ms },
            task_ms_mean: if self.tasks == 0 { 0.0 } else { self.busy_ms / self.tasks as f64 },
            task_ms_max: self.max_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_busy_time_and_spread() {
        let mut acc = PhaseAccum::new("event-loop");
        acc.add(10.0);
        acc.add(30.0);
        acc.add(20.0);
        let rec = acc.record();
        assert_eq!(rec.phase, "event-loop");
        assert_eq!(rec.parent, "run");
        assert_eq!(rec.busy_ms, 60.0);
        assert_eq!(rec.tasks, 3);
        assert_eq!(rec.task_ms_min, 10.0);
        assert_eq!(rec.task_ms_mean, 20.0);
        assert_eq!(rec.task_ms_max, 30.0);
    }

    #[test]
    fn empty_phase_reports_zeros() {
        let rec = PhaseAccum::new("config").record();
        assert_eq!(rec.busy_ms, 0.0);
        assert_eq!(rec.tasks, 0);
        assert_eq!(rec.task_ms_min, 0.0);
        assert_eq!(rec.task_ms_mean, 0.0);
        assert_eq!(rec.task_ms_max, 0.0);
    }
}
