//! Sidecar record types: one JSON object per line, discriminated by a
//! leading `"type"` key.
//!
//! A sidecar is a sequence of records — `manifest` first, then one `task`
//! per finished `(repetition × shard)` event loop, one `job` per
//! (scenario × scheme × seed) cell, the `phase` span table, and a final
//! `summary`. Wall-clock fields (`*_ms`) are scheduling-dependent by
//! nature; the embedded [`RunCounters`] and the event/flow totals are
//! deterministic — which is the split the CI counter-drift gate relies on.

use crate::counters::RunCounters;
use serde::{Deserialize, Error, Serialize, Value};

/// Sidecar schema version, bumped on any breaking record change.
pub const TELEMETRY_SCHEMA_VERSION: u32 = 1;

/// One scenario of the run manifest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ManifestScenario {
    /// Scenario (preset) name.
    pub name: String,
    /// DSLAM-neighborhood shards of the scenario's world.
    pub shards: usize,
    /// Repetitions averaged per scheme run.
    pub repetitions: usize,
    /// Clients simulated.
    pub n_clients: usize,
}

/// First sidecar line: what the run was asked to do.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ManifestRecord {
    /// Sidecar schema version ([`TELEMETRY_SCHEMA_VERSION`]).
    pub version: u32,
    /// Scenarios of the batch, in matrix order.
    pub scenarios: Vec<ManifestScenario>,
    /// Machine scheme keys, in matrix order.
    pub schemes: Vec<String>,
    /// Seeds per (scenario, scheme) cell.
    pub seeds: usize,
    /// Resolved total thread budget.
    pub threads: usize,
    /// Jobs in the (scenario × scheme × seed) matrix.
    pub jobs: usize,
}

/// One finished `(repetition × shard)` task.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskRecord {
    /// Job index in the batch matrix.
    pub job: usize,
    /// Scenario name.
    pub scenario: String,
    /// Machine scheme key.
    pub scheme: String,
    /// Seed index within the batch.
    pub seed_index: usize,
    /// Repetition index of the task.
    pub rep: usize,
    /// Shard index of the task.
    pub shard: usize,
    /// Shards per repetition.
    pub n_shards: usize,
    /// World-build / stream-setup span of the task, milliseconds
    /// (0 for prebuilt worlds).
    pub setup_ms: f64,
    /// Event-loop span of the task, milliseconds.
    pub loop_ms: f64,
    /// Tasks of this job finished when this one completed
    /// (scheduling-dependent).
    pub finished: usize,
    /// Total tasks of the job.
    pub total: usize,
    /// Tasks absorbed by the in-order folder at that moment
    /// (scheduling-dependent).
    pub merged: usize,
    /// Finished-but-not-merged results at that moment
    /// (scheduling-dependent).
    pub fold_queue: usize,
    /// Deterministic counters of the task's event loop.
    pub counters: RunCounters,
}

/// One finished (scenario × scheme × seed) job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobTelemetryRecord {
    /// Job index in the batch matrix.
    pub job: usize,
    /// Scenario name.
    pub scenario: String,
    /// Machine scheme key.
    pub scheme: String,
    /// Seed index within the batch.
    pub seed_index: usize,
    /// Wall-clock of the whole job, milliseconds.
    pub wall_ms: f64,
    /// Time the deterministic folder spent absorbing task results,
    /// milliseconds.
    pub fold_ms: f64,
    /// Shards of the job's world.
    pub shards: usize,
    /// Deterministic counters, merged over the job's tasks.
    pub counters: RunCounters,
}

/// One phase span of the run, accumulated over every task that
/// contributed to it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseRecord {
    /// Phase name (`config`, `world-build`, `event-loop`, `shard-fold`,
    /// `jsonl-write`).
    pub phase: String,
    /// Parent span (`run` for every top-level phase).
    pub parent: String,
    /// Busy time summed over contributions, milliseconds.
    pub busy_ms: f64,
    /// Contributions accumulated (tasks, jobs or write calls).
    pub tasks: u64,
    /// Smallest single contribution, milliseconds (0 when `tasks` is 0).
    pub task_ms_min: f64,
    /// Mean contribution, milliseconds.
    pub task_ms_mean: f64,
    /// Largest single contribution, milliseconds.
    pub task_ms_max: f64,
}

/// Last sidecar line: run totals.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SummaryRecord {
    /// Wall-clock of the whole batch, milliseconds.
    pub wall_ms: f64,
    /// Jobs completed.
    pub jobs: usize,
    /// `(repetition × shard)` tasks completed.
    pub tasks: u64,
    /// Events delivered, summed over jobs (deterministic).
    pub events: u64,
    /// Trace flows over the whole batch, summed over jobs (deterministic).
    pub flows: u64,
    /// Peak resident set size (`VmHWM`), MiB; absent off-Linux.
    pub peak_rss_mib: Option<f64>,
    /// Deterministic counters, merged over every job.
    pub counters: RunCounters,
}

/// Any sidecar record, tagged with a leading `"type"` key in its JSON form.
#[derive(Debug, Clone)]
pub enum TelemetryRecord {
    /// Run manifest (first line).
    Manifest(ManifestRecord),
    /// One `(repetition × shard)` task.
    Task(TaskRecord),
    /// One (scenario × scheme × seed) job.
    Job(JobTelemetryRecord),
    /// One phase span.
    Phase(PhaseRecord),
    /// Run totals (last line).
    Summary(SummaryRecord),
}

impl TelemetryRecord {
    /// The record's `"type"` tag.
    pub fn kind(&self) -> &'static str {
        match self {
            TelemetryRecord::Manifest(_) => "manifest",
            TelemetryRecord::Task(_) => "task",
            TelemetryRecord::Job(_) => "job",
            TelemetryRecord::Phase(_) => "phase",
            TelemetryRecord::Summary(_) => "summary",
        }
    }
}

impl Serialize for TelemetryRecord {
    fn to_value(&self) -> Value {
        // Internally tagged by hand: the derived (externally tagged) enum
        // form would nest the payload under the variant name, which makes
        // line-oriented consumers (grep, jq-less CI gates) needlessly
        // awkward. The tag is always the first key.
        let inner = match self {
            TelemetryRecord::Manifest(r) => r.to_value(),
            TelemetryRecord::Task(r) => r.to_value(),
            TelemetryRecord::Job(r) => r.to_value(),
            TelemetryRecord::Phase(r) => r.to_value(),
            TelemetryRecord::Summary(r) => r.to_value(),
        };
        let mut m: Vec<(String, Value)> =
            vec![("type".to_string(), Value::Str(self.kind().to_string()))];
        if let Value::Map(fields) = inner {
            m.extend(fields);
        }
        Value::Map(m)
    }
}

impl Deserialize for TelemetryRecord {
    fn from_value(v: &Value) -> Result<TelemetryRecord, Error> {
        let tag = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| Error::new("telemetry record without a `type` tag"))?;
        match tag {
            "manifest" => Ok(TelemetryRecord::Manifest(ManifestRecord::from_value(v)?)),
            "task" => Ok(TelemetryRecord::Task(TaskRecord::from_value(v)?)),
            "job" => Ok(TelemetryRecord::Job(JobTelemetryRecord::from_value(v)?)),
            "phase" => Ok(TelemetryRecord::Phase(PhaseRecord::from_value(v)?)),
            "summary" => Ok(TelemetryRecord::Summary(SummaryRecord::from_value(v)?)),
            other => Err(Error::new(&format!("unknown telemetry record type `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip_with_a_leading_type_tag() {
        let rec = TelemetryRecord::Phase(PhaseRecord {
            phase: "event-loop".into(),
            parent: "run".into(),
            busy_ms: 123.5,
            tasks: 4,
            task_ms_min: 10.0,
            task_ms_mean: 30.875,
            task_ms_max: 60.0,
        });
        let json = serde_json::to_string(&rec).unwrap();
        assert!(json.starts_with("{\"type\":\"phase\",\"phase\":\"event-loop\""), "{json}");
        let back: TelemetryRecord = serde_json::from_str(&json).unwrap();
        let TelemetryRecord::Phase(p) = back else { panic!("wrong variant") };
        assert_eq!(p.tasks, 4);
        assert_eq!(p.busy_ms, 123.5);
    }

    #[test]
    fn unknown_type_tags_are_rejected() {
        let err = serde_json::from_str::<TelemetryRecord>("{\"type\":\"nope\"}").unwrap_err();
        assert!(err.to_string().contains("unknown telemetry record type"), "{err}");
        assert!(serde_json::from_str::<TelemetryRecord>("{\"phase\":\"x\"}").is_err());
    }

    #[test]
    fn summary_round_trips_optional_rss() {
        let rec = TelemetryRecord::Summary(SummaryRecord {
            wall_ms: 10.0,
            jobs: 1,
            tasks: 2,
            events: 300,
            flows: 40,
            peak_rss_mib: None,
            counters: RunCounters::default(),
        });
        let json = serde_json::to_string(&rec).unwrap();
        assert!(json.contains("\"peak_rss_mib\":null"), "{json}");
        let back: TelemetryRecord = serde_json::from_str(&json).unwrap();
        let TelemetryRecord::Summary(s) = back else { panic!("wrong variant") };
        assert_eq!(s.events, 300);
        assert_eq!(s.peak_rss_mib, None);
    }
}
