//! Deterministic work counters of one simulation run.
//!
//! Every field is a pure function of the event loop's delivered sequence —
//! never of wall-clock, thread count or completion order — so counters from
//! independent `(repetition × shard)` tasks can be [`RunCounters::merge`]d
//! in any order and still produce byte-identical totals (sums are
//! commutative, peaks take the max). `tests/determinism.rs` pins the
//! invariance at 1 vs 8 threads.

use serde::{Deserialize, Error, Serialize, Value};

/// Deterministic counters of one run (or an order-invariant merge of many).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunCounters {
    /// Trace-arrival events delivered.
    pub arrivals: u64,
    /// Flow-departure events delivered.
    pub departures: u64,
    /// Gateway wake-completion events delivered.
    pub wake_dones: u64,
    /// SoI idle-check events delivered.
    pub idle_checks: u64,
    /// BH2 per-terminal decision epochs delivered.
    pub bh2_ticks: u64,
    /// Optimal re-solves (one ILP solve per delivered `OptimalTick`).
    pub optimal_solves: u64,
    /// Metric-sampler events delivered.
    pub samples: u64,
    /// Multi-doze descent ticks delivered (one per doze-level descent).
    pub doze_ticks: u64,
    /// Departure events cancelled by gateway resyncs (superseded timers).
    pub cancelled_departures: u64,
    /// Idle-check events cancelled by re-arms.
    pub cancelled_idle_checks: u64,
    /// Doze-descent ticks cancelled by wakes.
    pub cancelled_doze_ticks: u64,
    /// Events pushed onto the scheduler heap (delivered + cancelled +
    /// still pending at the horizon).
    pub heap_pushes: u64,
    /// Peak scheduler-heap occupancy at any delivery (max over merges).
    pub peak_heap: u64,
    /// Flows the arrival source would yield over the whole day.
    pub flows_total: u64,
    /// Flows that completed by the horizon.
    pub flows_completed: u64,
    /// Peak concurrently-active (arrived, not completed) flows (max over
    /// merges).
    pub peak_active_flows: u64,
    /// Streaming-generator cursor refills (one lazy burst regeneration per
    /// refill; 0 on the materialized-trace path).
    pub stream_refills: u64,
    /// K-way-merge heap pops of the streaming generator (one per yielded
    /// flow; 0 on the materialized-trace path).
    pub merge_pops: u64,
    /// `(repetition × shard)` task results absorbed by the deterministic
    /// in-order folder (1 for a bare single run).
    pub fold_absorptions: u64,
    /// Worker-task attempts that panicked and were retried (a task retried
    /// twice counts 2). Retries replay the identical RNG stream, so this
    /// is pure observability — never part of result bytes.
    pub tasks_retried: u64,
    /// Faults a [`FaultPlan`]-style chaos harness injected (worker panics,
    /// checkpoint IO errors, torn tails).
    pub faults_injected: u64,
    /// `(repetition × shard)` tasks replayed from a checkpoint instead of
    /// simulated on a `--resume` run.
    pub tasks_resumed: u64,
    /// Shard prototypes built by the world-prototype cache (one real
    /// `FlowStream` setup pass each; 0 when the cache is inactive).
    pub proto_cache_builds: u64,
    /// Tasks served a cached shard prototype instead of rebuilding it
    /// (`setup_ms = 0` attribution; 0 when the cache is inactive).
    pub proto_cache_hits: u64,
}

// Serialization is hand-written so the two doze fields are *omitted when
// zero*: every counter golden predating the doze ladder — and every run of
// a scheme that never dozes — stays byte-identical, while doze-scheme runs
// record their transitions. The legacy seventeen keys always serialize, in
// the historical order; absent doze keys deserialize to 0.
impl Serialize for RunCounters {
    fn to_value(&self) -> Value {
        let mut m: Vec<(String, Value)> = Vec::with_capacity(19);
        let mut put = |k: &str, v: u64| m.push((k.to_string(), Value::Int(v as i128)));
        put("arrivals", self.arrivals);
        put("departures", self.departures);
        put("wake_dones", self.wake_dones);
        put("idle_checks", self.idle_checks);
        put("bh2_ticks", self.bh2_ticks);
        put("optimal_solves", self.optimal_solves);
        put("samples", self.samples);
        if self.doze_ticks > 0 {
            put("doze_ticks", self.doze_ticks);
        }
        put("cancelled_departures", self.cancelled_departures);
        put("cancelled_idle_checks", self.cancelled_idle_checks);
        if self.cancelled_doze_ticks > 0 {
            put("cancelled_doze_ticks", self.cancelled_doze_ticks);
        }
        put("heap_pushes", self.heap_pushes);
        put("peak_heap", self.peak_heap);
        put("flows_total", self.flows_total);
        put("flows_completed", self.flows_completed);
        put("peak_active_flows", self.peak_active_flows);
        put("stream_refills", self.stream_refills);
        put("merge_pops", self.merge_pops);
        put("fold_absorptions", self.fold_absorptions);
        // Recovery counters follow the doze precedent: omitted when zero,
        // so every fault-free run — including the committed giga/tera
        // counter goldens — keeps the legacy key set byte-identical.
        if self.tasks_retried > 0 {
            put("tasks_retried", self.tasks_retried);
        }
        if self.faults_injected > 0 {
            put("faults_injected", self.faults_injected);
        }
        if self.tasks_resumed > 0 {
            put("tasks_resumed", self.tasks_resumed);
        }
        // World-prototype cache counters, same omit-when-zero contract:
        // cache-off runs (every pre-existing golden) keep their key set.
        if self.proto_cache_builds > 0 {
            put("proto_cache_builds", self.proto_cache_builds);
        }
        if self.proto_cache_hits > 0 {
            put("proto_cache_hits", self.proto_cache_hits);
        }
        Value::Map(m)
    }
}

impl Deserialize for RunCounters {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let m = v.as_map().ok_or_else(|| Error::expected("map", v))?;
        let get = |name: &str| -> Result<u64, Error> {
            match m.iter().find(|(k, _)| k == name) {
                Some((_, v)) => u64::from_value(v),
                None => Ok(0),
            }
        };
        Ok(RunCounters {
            arrivals: get("arrivals")?,
            departures: get("departures")?,
            wake_dones: get("wake_dones")?,
            idle_checks: get("idle_checks")?,
            bh2_ticks: get("bh2_ticks")?,
            optimal_solves: get("optimal_solves")?,
            samples: get("samples")?,
            doze_ticks: get("doze_ticks")?,
            cancelled_departures: get("cancelled_departures")?,
            cancelled_idle_checks: get("cancelled_idle_checks")?,
            cancelled_doze_ticks: get("cancelled_doze_ticks")?,
            heap_pushes: get("heap_pushes")?,
            peak_heap: get("peak_heap")?,
            flows_total: get("flows_total")?,
            flows_completed: get("flows_completed")?,
            peak_active_flows: get("peak_active_flows")?,
            stream_refills: get("stream_refills")?,
            merge_pops: get("merge_pops")?,
            fold_absorptions: get("fold_absorptions")?,
            tasks_retried: get("tasks_retried")?,
            faults_injected: get("faults_injected")?,
            tasks_resumed: get("tasks_resumed")?,
            proto_cache_builds: get("proto_cache_builds")?,
            proto_cache_hits: get("proto_cache_hits")?,
        })
    }
}

impl RunCounters {
    /// Total events delivered, summed over kinds.
    pub fn delivered(&self) -> u64 {
        self.arrivals
            + self.departures
            + self.wake_dones
            + self.idle_checks
            + self.bh2_ticks
            + self.optimal_solves
            + self.samples
            + self.doze_ticks
    }

    /// Total events cancelled, summed over kinds.
    pub fn cancelled(&self) -> u64 {
        self.cancelled_departures + self.cancelled_idle_checks + self.cancelled_doze_ticks
    }

    /// Absorbs another task's counters: sums everywhere, maxes on the two
    /// peak fields. Commutative and associative, so the merged total is
    /// independent of fold order and thread count.
    pub fn merge(&mut self, other: &RunCounters) {
        self.arrivals += other.arrivals;
        self.departures += other.departures;
        self.wake_dones += other.wake_dones;
        self.idle_checks += other.idle_checks;
        self.bh2_ticks += other.bh2_ticks;
        self.optimal_solves += other.optimal_solves;
        self.samples += other.samples;
        self.doze_ticks += other.doze_ticks;
        self.cancelled_departures += other.cancelled_departures;
        self.cancelled_idle_checks += other.cancelled_idle_checks;
        self.cancelled_doze_ticks += other.cancelled_doze_ticks;
        self.heap_pushes += other.heap_pushes;
        self.peak_heap = self.peak_heap.max(other.peak_heap);
        self.flows_total += other.flows_total;
        self.flows_completed += other.flows_completed;
        self.peak_active_flows = self.peak_active_flows.max(other.peak_active_flows);
        self.stream_refills += other.stream_refills;
        self.merge_pops += other.merge_pops;
        self.fold_absorptions += other.fold_absorptions;
        self.tasks_retried += other.tasks_retried;
        self.faults_injected += other.faults_injected;
        self.tasks_resumed += other.tasks_resumed;
        self.proto_cache_builds += other.proto_cache_builds;
        self.proto_cache_hits += other.proto_cache_hits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(k: u64) -> RunCounters {
        RunCounters {
            arrivals: k,
            departures: 2 * k,
            wake_dones: k / 2,
            idle_checks: 3 * k,
            bh2_ticks: k + 1,
            optimal_solves: k % 3,
            samples: 7,
            doze_ticks: 0,
            cancelled_departures: k / 4,
            cancelled_idle_checks: k / 5,
            cancelled_doze_ticks: 0,
            heap_pushes: 9 * k,
            peak_heap: 100 + k,
            flows_total: k,
            flows_completed: k.saturating_sub(1),
            peak_active_flows: 50 + (k % 17),
            stream_refills: k,
            merge_pops: k,
            fold_absorptions: 1,
            tasks_retried: 0,
            faults_injected: 0,
            tasks_resumed: 0,
            proto_cache_builds: 0,
            proto_cache_hits: 0,
        }
    }

    #[test]
    fn merge_is_order_invariant() {
        let parts: Vec<RunCounters> = (1..20).map(sample).collect();
        let mut fwd = RunCounters::default();
        for p in &parts {
            fwd.merge(p);
        }
        let mut bwd = RunCounters::default();
        for p in parts.iter().rev() {
            bwd.merge(p);
        }
        assert_eq!(fwd, bwd);
        assert_eq!(fwd.fold_absorptions, 19);
        assert_eq!(fwd.peak_heap, 119);
    }

    #[test]
    fn delivered_and_cancelled_sum_the_kinds() {
        let mut c = sample(10);
        assert_eq!(c.delivered(), 10 + 20 + 5 + 30 + 11 + 1 + 7);
        assert_eq!(c.cancelled(), 2 + 2);
        c.doze_ticks = 4;
        c.cancelled_doze_ticks = 3;
        assert_eq!(c.delivered(), 10 + 20 + 5 + 30 + 11 + 1 + 7 + 4);
        assert_eq!(c.cancelled(), 2 + 2 + 3);
    }

    #[test]
    fn serializes_to_a_stable_key_order() {
        let json = serde_json::to_string(&sample(3)).unwrap();
        assert!(json.starts_with("{\"arrivals\":3,"), "{json}");
        assert!(json.contains("\"fold_absorptions\":1"));
        let back: RunCounters = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sample(3));
    }

    #[test]
    fn doze_fields_are_omitted_when_zero_and_roundtrip_when_set() {
        // Zero doze counters serialize to the exact legacy key set — the
        // invariant that keeps pre-doze counter goldens byte-identical.
        let legacy = serde_json::to_string(&sample(3)).unwrap();
        assert!(!legacy.contains("doze"), "{legacy}");

        let mut c = sample(3);
        c.doze_ticks = 11;
        c.cancelled_doze_ticks = 5;
        let json = serde_json::to_string(&c).unwrap();
        assert!(
            json.contains("\"samples\":7,\"doze_ticks\":11,\"cancelled_departures\""),
            "{json}"
        );
        assert!(json.contains("\"cancelled_idle_checks\":0,\"cancelled_doze_ticks\":5"), "{json}");
        let back: RunCounters = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
        // Absent doze keys deserialize to zero (old sidecars stay readable).
        let old: RunCounters = serde_json::from_str(&legacy).unwrap();
        assert_eq!(old, sample(3));
    }

    #[test]
    fn recovery_fields_are_omitted_when_zero_and_roundtrip_when_set() {
        let legacy = serde_json::to_string(&sample(3)).unwrap();
        assert!(!legacy.contains("retried"), "{legacy}");
        assert!(!legacy.contains("faults"), "{legacy}");
        assert!(!legacy.contains("resumed"), "{legacy}");

        let mut c = sample(3);
        c.tasks_retried = 2;
        c.faults_injected = 3;
        c.tasks_resumed = 5;
        let json = serde_json::to_string(&c).unwrap();
        assert!(
            json.ends_with("\"tasks_retried\":2,\"faults_injected\":3,\"tasks_resumed\":5}"),
            "{json}"
        );
        let back: RunCounters = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
        // Recovery counters never count as delivered simulation events.
        assert_eq!(back.delivered(), sample(3).delivered());

        let mut merged = sample(3);
        merged.merge(&c);
        assert_eq!(merged.tasks_retried, 2);
        assert_eq!(merged.faults_injected, 3);
        assert_eq!(merged.tasks_resumed, 5);
    }

    #[test]
    fn proto_cache_fields_are_omitted_when_zero_and_trail_the_recovery_keys() {
        let legacy = serde_json::to_string(&sample(3)).unwrap();
        assert!(!legacy.contains("proto_cache"), "{legacy}");

        let mut c = sample(3);
        c.tasks_resumed = 5;
        c.proto_cache_builds = 64;
        c.proto_cache_hits = 128;
        let json = serde_json::to_string(&c).unwrap();
        assert!(
            json.ends_with(
                "\"tasks_resumed\":5,\"proto_cache_builds\":64,\"proto_cache_hits\":128}"
            ),
            "{json}"
        );
        let back: RunCounters = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
        // Cache accounting never counts as delivered simulation events, and
        // absent keys deserialize to zero (old sidecars stay readable).
        assert_eq!(back.delivered(), sample(3).delivered());
        let old: RunCounters = serde_json::from_str(&legacy).unwrap();
        assert_eq!(old, sample(3));

        let mut merged = sample(3);
        merged.merge(&c);
        assert_eq!(merged.proto_cache_builds, 64);
        assert_eq!(merged.proto_cache_hits, 128);
    }
}
