//! Byte-based sliding-window load tracking.
//!
//! Gateways (for SoI idle detection and BH2's thresholds) track their own
//! backhaul load as "bytes carried over the last estimation window" — the
//! paper estimates load over 1-minute intervals (§5.1). [`LoadWindow`] keeps
//! a time-ordered deque of byte deposits and reports the windowed rate.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Sliding-window byte-rate tracker.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadWindow {
    window_ms: u64,
    /// `(t_ms, bytes)` deposits, oldest first.
    deposits: VecDeque<(u64, u64)>,
    /// Running sum of `bytes` over `deposits`.
    sum_bytes: u64,
}

impl LoadWindow {
    /// Creates a tracker with the given window (paper: 60 s).
    pub fn new(window_ms: u64) -> Self {
        assert!(window_ms > 0);
        LoadWindow { window_ms, deposits: VecDeque::new(), sum_bytes: 0 }
    }

    /// Window length in milliseconds.
    pub fn window_ms(&self) -> u64 {
        self.window_ms
    }

    /// Records `bytes` transferred at time `t_ms` (non-decreasing times).
    pub fn add(&mut self, t_ms: u64, bytes: u64) {
        if let Some(&(last, _)) = self.deposits.back() {
            debug_assert!(t_ms >= last, "deposits out of order");
        }
        self.deposits.push_back((t_ms, bytes));
        self.sum_bytes += bytes;
        self.evict(t_ms);
    }

    /// Drops deposits older than the window relative to `now_ms`.
    fn evict(&mut self, now_ms: u64) {
        while let Some(&(t, b)) = self.deposits.front() {
            if t + self.window_ms <= now_ms {
                self.deposits.pop_front();
                self.sum_bytes -= b;
            } else {
                break;
            }
        }
    }

    /// Bytes observed in the window ending at `now_ms`.
    pub fn bytes_in_window(&mut self, now_ms: u64) -> u64 {
        self.evict(now_ms);
        self.sum_bytes
    }

    /// Windowed average rate in bit/s at `now_ms`.
    pub fn rate_bps(&mut self, now_ms: u64) -> f64 {
        self.bytes_in_window(now_ms) as f64 * 8.0 * 1_000.0 / self.window_ms as f64
    }

    /// Windowed load as a fraction of `capacity_bps`, clamped to `[0, 1]`.
    pub fn load_fraction(&mut self, now_ms: u64, capacity_bps: f64) -> f64 {
        debug_assert!(capacity_bps > 0.0);
        (self.rate_bps(now_ms) / capacity_bps).clamp(0.0, 1.0)
    }

    /// Time of the most recent deposit, if any.
    pub fn last_activity_ms(&self) -> Option<u64> {
        self.deposits.back().map(|&(t, _)| t)
    }

    /// Clears all recorded activity (used when a gateway power-cycles).
    pub fn reset(&mut self) {
        self.deposits.clear();
        self.sum_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_over_window() {
        let mut w = LoadWindow::new(60_000);
        // 450 kB over a minute = 60 kbit/s.
        w.add(0, 150_000);
        w.add(30_000, 150_000);
        w.add(59_000, 150_000);
        let rate = w.rate_bps(59_000);
        assert!((rate - 60_000.0).abs() < 1e-9, "rate {rate}");
    }

    #[test]
    fn old_deposits_age_out() {
        let mut w = LoadWindow::new(10_000);
        w.add(0, 1_000);
        assert_eq!(w.bytes_in_window(5_000), 1_000);
        assert_eq!(w.bytes_in_window(10_000), 0);
    }

    #[test]
    fn load_fraction_clamps() {
        let mut w = LoadWindow::new(1_000);
        w.add(0, 10_000_000);
        assert_eq!(w.load_fraction(0, 6.0e6), 1.0);
        let mut empty = LoadWindow::new(1_000);
        assert_eq!(empty.load_fraction(0, 6.0e6), 0.0);
    }

    #[test]
    fn last_activity_and_reset() {
        let mut w = LoadWindow::new(1_000);
        assert_eq!(w.last_activity_ms(), None);
        w.add(5, 10);
        w.add(7, 10);
        assert_eq!(w.last_activity_ms(), Some(7));
        w.reset();
        assert_eq!(w.last_activity_ms(), None);
        assert_eq!(w.bytes_in_window(7), 0);
    }

    #[test]
    fn eviction_is_left_inclusive() {
        let mut w = LoadWindow::new(10_000);
        w.add(0, 100);
        // A deposit exactly window-old is evicted (half-open window).
        assert_eq!(w.bytes_in_window(9_999), 100);
        assert_eq!(w.bytes_in_window(10_000), 0);
    }
}
