//! Shard planning: splitting one scenario's client/gateway population into
//! independent DSLAM neighborhoods.
//!
//! The paper evaluates a single DSLAM's neighborhood (40 gateways, 272
//! clients), but its energy argument is about the whole access network. A
//! *shard* is one such neighborhood: an independent trace, overlap
//! topology and DSLAM, simulated on its own event loop. Wireless sharing
//! never crosses a shard boundary — exactly as a household cannot reach a
//! gateway wired into a DSLAM across town — so per-shard topologies
//! replace one global adjacency and the quadratic topology cost becomes
//! linear in the shard count.

use insomnia_simcore::{SimError, SimResult};

/// Budget on `clients × gateways` reachability pairs one shard may
/// enumerate. The overlap builder, the BH2 candidate scans and the Optimal
/// re-solve all walk per-client gateway lists, so the pair count is the
/// unit of topology work; past ~10⁸ pairs a single shard stops being "a
/// neighborhood" and the run silently stalls instead of finishing.
/// Validation rejects such configs and points at the `shards` axis.
pub const MAX_TOPOLOGY_PAIRS: u64 = 1 << 27;

/// Number of client × gateway pairs a shard's topology enumerates, or
/// `None` when the product overflows `u64` (absurdly oversized configs
/// must not wrap around into "looks fine").
pub fn topology_pair_count(n_clients: usize, n_gateways: usize) -> Option<u64> {
    (n_clients as u64).checked_mul(n_gateways as u64)
}

/// One shard's slice of the global client and gateway populations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpan {
    /// Clients simulated in this shard.
    pub n_clients: usize,
    /// Gateways (DSLAM ports in use) in this shard.
    pub n_gateways: usize,
    /// Global index of this shard's first client (client `c` of the shard
    /// is global client `client_offset + c`).
    pub client_offset: usize,
    /// Global index of this shard's first gateway.
    pub gateway_offset: usize,
}

/// Splits `n_clients` clients and `n_gateways` gateways over `n_shards`
/// independent neighborhoods, spreading remainders over the leading shards
/// so shard sizes differ by at most one.
///
/// Every shard must end up with at least one client and one gateway;
/// thinner splits are configuration errors, not degenerate worlds.
pub fn shard_spans(
    n_clients: usize,
    n_gateways: usize,
    n_shards: usize,
) -> SimResult<Vec<ShardSpan>> {
    if n_shards == 0 {
        return Err(SimError::InvalidConfig("need at least one shard".into()));
    }
    if n_clients < n_shards {
        return Err(SimError::InvalidConfig(format!(
            "{n_clients} clients cannot fill {n_shards} shards"
        )));
    }
    if n_gateways < n_shards {
        return Err(SimError::InvalidConfig(format!(
            "{n_gateways} gateways cannot fill {n_shards} shards"
        )));
    }
    let mut spans = Vec::with_capacity(n_shards);
    let (mut client_offset, mut gateway_offset) = (0usize, 0usize);
    for s in 0..n_shards {
        let clients = n_clients / n_shards + usize::from(s < n_clients % n_shards);
        let gateways = n_gateways / n_shards + usize::from(s < n_gateways % n_shards);
        spans.push(ShardSpan {
            n_clients: clients,
            n_gateways: gateways,
            client_offset,
            gateway_offset,
        });
        client_offset += clients;
        gateway_offset += gateways;
    }
    Ok(spans)
}

/// Largest per-shard count of a population split the [`shard_spans`] way
/// (remainder over the leading shards) — the bound a per-shard resource
/// check must use, e.g. gateways against DSLAM ports.
pub fn max_per_shard(n: usize, n_shards: usize) -> usize {
    n / n_shards.max(1) + usize::from(!n.is_multiple_of(n_shards.max(1)))
}

/// Smallest per-shard count of a [`shard_spans`] split — the bound a
/// per-shard minimum must use, e.g. gateways against the topology
/// generator's floor.
pub fn min_per_shard(n: usize, n_shards: usize) -> usize {
    n / n_shards.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_covers_everything_exactly_once() {
        let spans = shard_spans(272, 40, 4).unwrap();
        assert_eq!(spans.len(), 4);
        assert_eq!(spans.iter().map(|s| s.n_clients).sum::<usize>(), 272);
        assert_eq!(spans.iter().map(|s| s.n_gateways).sum::<usize>(), 40);
        let mut client_cursor = 0;
        let mut gw_cursor = 0;
        for s in &spans {
            assert_eq!(s.client_offset, client_cursor);
            assert_eq!(s.gateway_offset, gw_cursor);
            client_cursor += s.n_clients;
            gw_cursor += s.n_gateways;
        }
    }

    #[test]
    fn remainders_spread_over_leading_shards() {
        let spans = shard_spans(10, 7, 3).unwrap();
        assert_eq!(spans.iter().map(|s| s.n_clients).collect::<Vec<_>>(), vec![4, 3, 3]);
        assert_eq!(spans.iter().map(|s| s.n_gateways).collect::<Vec<_>>(), vec![3, 2, 2]);
        // The bounds helpers agree with the realized split, clients and
        // gateways alike.
        assert_eq!(max_per_shard(10, 3), 4);
        assert_eq!(min_per_shard(10, 3), 3);
        assert_eq!(max_per_shard(7, 3), 3);
        assert_eq!(min_per_shard(7, 3), 2);
        assert_eq!(max_per_shard(8, 4), 2);
        assert_eq!(min_per_shard(8, 4), 2);
    }

    #[test]
    fn single_shard_is_the_whole_world() {
        let spans = shard_spans(272, 40, 1).unwrap();
        assert_eq!(
            spans,
            vec![ShardSpan { n_clients: 272, n_gateways: 40, client_offset: 0, gateway_offset: 0 }]
        );
    }

    #[test]
    fn rejects_unfillable_splits() {
        assert!(shard_spans(3, 40, 4).is_err(), "fewer clients than shards");
        assert!(shard_spans(272, 3, 4).is_err(), "fewer gateways than shards");
        assert!(shard_spans(10, 10, 0).is_err());
    }

    #[test]
    fn pair_count_checks_overflow() {
        assert_eq!(topology_pair_count(272, 40), Some(10_880));
        assert_eq!(topology_pair_count(usize::MAX, 2), None);
        assert!(topology_pair_count(100_000, 12_800).unwrap() > MAX_TOPOLOGY_PAIRS);
        assert!(topology_pair_count(1_600, 200).unwrap() < MAX_TOPOLOGY_PAIRS);
    }
}
