//! Wireless channel rate model.
//!
//! The paper's evaluation scenario (§5.1) assigns 12 Mbps between a client
//! and its home gateway and — based on the Mark-and-Sweep measurements it
//! cites — half of that (6 Mbps) towards gateways adjacent to the home.

use serde::{Deserialize, Serialize};

/// Wireless rates used when building topologies.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ChannelModel {
    /// Rate between a client and its own (home) gateway, bit/s.
    pub home_bps: f64,
    /// Rate between a client and a neighboring gateway, bit/s.
    pub neighbor_bps: f64,
}

impl Default for ChannelModel {
    fn default() -> Self {
        // Paper §5.1: 12 Mbps to the home gateway, 6 Mbps to neighbors.
        ChannelModel { home_bps: 12.0e6, neighbor_bps: 6.0e6 }
    }
}

impl ChannelModel {
    /// Validates that rates are positive and home ≥ neighbor (clients are
    /// closest to their own AP).
    pub fn is_valid(&self) -> bool {
        self.home_bps > 0.0 && self.neighbor_bps > 0.0 && self.home_bps >= self.neighbor_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = ChannelModel::default();
        assert_eq!(c.home_bps, 12.0e6);
        assert_eq!(c.neighbor_bps, 6.0e6);
        assert!(c.is_valid());
    }

    #[test]
    fn validity_checks() {
        assert!(!ChannelModel { home_bps: 1.0, neighbor_bps: 2.0 }.is_valid());
        assert!(!ChannelModel { home_bps: 0.0, neighbor_bps: 0.0 }.is_valid());
    }
}
