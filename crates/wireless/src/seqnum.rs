//! Passive gateway-load estimation via 802.11 MAC sequence numbers (§3.2).
//!
//! Every 802.11 frame a gateway transmits carries a 12-bit MAC Sequence
//! Number (SN) that increments per frame, modulo 4096. A BH2 terminal
//! periodically tunes to each gateway in range, records the SN, and
//! estimates the gateway's transmit rate from the SN delta — no association
//! or cooperation needed. This module models both ends: the gateway-side
//! counter and the terminal-side estimator (including wraparound handling).

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// 802.11 sequence numbers live in `[0, 4096)`.
pub const SEQ_MODULUS: u32 = 4096;

/// Gateway-side frame counter: the ground truth the estimator observes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SeqCounter {
    frames: u64,
}

impl SeqCounter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` transmitted frames.
    pub fn add_frames(&mut self, n: u64) {
        self.frames += n;
    }

    /// Records a byte volume transmitted as `ceil(bytes / frame_payload)`
    /// frames.
    pub fn add_bytes(&mut self, bytes: u64, frame_payload: u64) {
        assert!(frame_payload > 0);
        self.add_frames(bytes.div_ceil(frame_payload));
    }

    /// Total frames ever sent.
    pub fn total_frames(&self) -> u64 {
        self.frames
    }

    /// The 12-bit sequence number currently visible in the air.
    pub fn current_sn(&self) -> u32 {
        (self.frames % u64::from(SEQ_MODULUS)) as u32
    }
}

/// Terminal-side rate estimator from periodic SN observations.
///
/// Wraparound: consecutive observations are assumed to be less than one
/// modulus (4096 frames) apart — with ≤1000 frames/s on a 6 Mbps backhaul
/// and ~1 s observation spacing this always holds, as in the paper's
/// implementation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeqNumEstimator {
    window_ms: u64,
    /// Observations `(t_ms, sn)`, oldest first.
    samples: VecDeque<(u64, u32)>,
    /// Cumulative unwrapped frame count across retained samples.
    unwrapped: VecDeque<u64>,
}

impl SeqNumEstimator {
    /// Creates an estimator averaging over the given window (paper: load is
    /// estimated over 1-minute intervals).
    pub fn new(window_ms: u64) -> Self {
        assert!(window_ms > 0);
        SeqNumEstimator { window_ms, samples: VecDeque::new(), unwrapped: VecDeque::new() }
    }

    /// Records an SN observed at time `t_ms`. Observations must be
    /// time-ordered.
    pub fn observe(&mut self, t_ms: u64, sn: u32) {
        debug_assert!(sn < SEQ_MODULUS);
        let unwrapped = match (self.samples.back(), self.unwrapped.back()) {
            (Some(&(last_t, last_sn)), Some(&last_u)) => {
                debug_assert!(t_ms >= last_t, "observations out of order");
                let delta = (sn + SEQ_MODULUS - last_sn) % SEQ_MODULUS;
                last_u + u64::from(delta)
            }
            _ => 0,
        };
        self.samples.push_back((t_ms, sn));
        self.unwrapped.push_back(unwrapped);
        // Evict samples that fell out of the window (keep one preceding
        // sample so the window always has a left edge).
        while self.samples.len() > 2 && self.samples[1].0 + self.window_ms <= t_ms {
            self.samples.pop_front();
            self.unwrapped.pop_front();
        }
    }

    /// Estimated frame rate (frames/s) over the observation window.
    /// `None` until two observations exist.
    pub fn frames_per_sec(&self) -> Option<f64> {
        if self.samples.len() < 2 {
            return None;
        }
        let (t0, _) = self.samples[0];
        let (t1, _) = *self.samples.back().expect("len >= 2");
        if t1 == t0 {
            return None;
        }
        let frames = self.unwrapped.back().expect("len >= 2") - self.unwrapped[0];
        Some(frames as f64 * 1_000.0 / (t1 - t0) as f64)
    }

    /// Estimated backhaul load fraction, given the mean frame payload and
    /// the backhaul capacity.
    pub fn load_fraction(&self, frame_payload_bytes: f64, backhaul_bps: f64) -> Option<f64> {
        let fps = self.frames_per_sec()?;
        Some((fps * frame_payload_bytes * 8.0 / backhaul_bps).min(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_tracks_frames_and_wraps() {
        let mut c = SeqCounter::new();
        c.add_frames(4095);
        assert_eq!(c.current_sn(), 4095);
        c.add_frames(2);
        assert_eq!(c.current_sn(), 1);
        assert_eq!(c.total_frames(), 4097);
    }

    #[test]
    fn add_bytes_rounds_up_frames() {
        let mut c = SeqCounter::new();
        c.add_bytes(1, 1500);
        assert_eq!(c.total_frames(), 1);
        c.add_bytes(3000, 1500);
        assert_eq!(c.total_frames(), 3);
        c.add_bytes(3001, 1500);
        assert_eq!(c.total_frames(), 6);
    }

    #[test]
    fn estimator_recovers_constant_rate() {
        // Gateway sends 100 frames/s; observe every second for 30 s.
        let mut gw = SeqCounter::new();
        let mut est = SeqNumEstimator::new(60_000);
        for t in 0..30u64 {
            est.observe(t * 1_000, gw.current_sn());
            gw.add_frames(100);
        }
        let fps = est.frames_per_sec().unwrap();
        assert!((fps - 100.0).abs() < 1e-9, "estimated {fps}");
    }

    #[test]
    fn estimator_handles_wraparound() {
        // 1000 frames/s wraps every ~4 s through the 12-bit space.
        let mut gw = SeqCounter::new();
        let mut est = SeqNumEstimator::new(60_000);
        for t in 0..20u64 {
            est.observe(t * 1_000, gw.current_sn());
            gw.add_frames(1_000);
        }
        let fps = est.frames_per_sec().unwrap();
        assert!((fps - 1_000.0).abs() < 1e-9, "estimated {fps}");
    }

    #[test]
    fn estimator_window_slides() {
        let mut est = SeqNumEstimator::new(10_000);
        // 10 fps for 10 s, then silence for 20 s: windowed estimate → 0.
        let mut gw = SeqCounter::new();
        for t in 0..10u64 {
            est.observe(t * 1_000, gw.current_sn());
            gw.add_frames(10);
        }
        for t in 10..30u64 {
            est.observe(t * 1_000, gw.current_sn());
        }
        let fps = est.frames_per_sec().unwrap();
        assert!(fps < 0.5, "stale traffic must age out, got {fps}");
    }

    #[test]
    fn load_fraction_caps_at_one() {
        let mut est = SeqNumEstimator::new(10_000);
        let mut gw = SeqCounter::new();
        for t in 0..5u64 {
            est.observe(t * 1_000, gw.current_sn());
            gw.add_frames(2_000);
        }
        // 2000 fps × 1500 B = 24 Mbps on a 6 Mbps link ⇒ clamped to 1.
        assert_eq!(est.load_fraction(1_500.0, 6.0e6), Some(1.0));
    }

    #[test]
    fn needs_two_observations() {
        let mut est = SeqNumEstimator::new(1_000);
        assert_eq!(est.frames_per_sec(), None);
        est.observe(0, 5);
        assert_eq!(est.frames_per_sec(), None);
        assert_eq!(est.load_fraction(1_500.0, 6.0e6), None);
    }
}
