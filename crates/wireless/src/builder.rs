//! Topology builders for the paper's two evaluation settings.
//!
//! * [`overlap_topology`] — the main scenario: a gateway overlap graph with
//!   a prescribed (household-like) degree distribution; a client reaches its
//!   home gateway plus the gateways adjacent to it (§5.1, mean 5.6 networks
//!   in range).
//! * [`binomial_topology`] — the density sweep of Fig. 10: every non-home
//!   gateway is reachable independently with a probability chosen to hit a
//!   target mean number of available gateways per client.

use crate::channel::ChannelModel;
use crate::degree::{household_degree_sequence, prescribed_degree_graph};
use crate::topology::{Link, Topology};
use insomnia_simcore::{SimError, SimResult, SimRng};

/// Builds the main-scenario topology: gateway overlap graph with mean degree
/// `mean_networks_in_range − 1`, clients reaching home + home's neighbors.
///
/// `home[c]` gives each client's home gateway (from the trace).
pub fn overlap_topology(
    home: &[usize],
    n_gateways: usize,
    mean_networks_in_range: f64,
    channel: ChannelModel,
    rng: &mut SimRng,
) -> SimResult<Topology> {
    if !channel.is_valid() {
        return Err(SimError::InvalidConfig("invalid channel model".into()));
    }
    if mean_networks_in_range < 1.0 {
        return Err(SimError::InvalidConfig("mean networks in range must be ≥ 1".into()));
    }
    if n_gateways < 2 {
        return Err(SimError::InvalidConfig("need at least two gateways".into()));
    }
    // A client sees its home plus the home's graph neighbors, so the gateway
    // graph needs mean degree (networks-in-range − 1), floored at the
    // generator's minimum overlap of 2.
    let gw_mean = (mean_networks_in_range - 1.0).max(2.0);
    let degrees = household_degree_sequence(n_gateways, gw_mean, rng);
    let graph = prescribed_degree_graph(&degrees, rng)?;

    let links = home
        .iter()
        .map(|&h| {
            let mut ls = vec![Link { gateway: h, rate_bps: channel.home_bps }];
            for nb in graph.neighbors(h) {
                ls.push(Link { gateway: nb, rate_bps: channel.neighbor_bps });
            }
            ls
        })
        .collect();
    Topology::new(n_gateways, home.to_vec(), links)
}

/// Builds the Fig. 10 density-sweep topology: each non-home gateway is in
/// range independently with probability `(mean_in_range − 1)/(n − 1)`.
///
/// `mean_in_range = 1` reproduces the paper's leftmost point: clients can
/// only reach their own gateway.
pub fn binomial_topology(
    home: &[usize],
    n_gateways: usize,
    mean_in_range: f64,
    channel: ChannelModel,
    rng: &mut SimRng,
) -> SimResult<Topology> {
    if !channel.is_valid() {
        return Err(SimError::InvalidConfig("invalid channel model".into()));
    }
    if n_gateways < 1 {
        return Err(SimError::InvalidConfig("need at least one gateway".into()));
    }
    if mean_in_range < 1.0 || mean_in_range > n_gateways as f64 {
        return Err(SimError::InvalidConfig(format!(
            "mean_in_range {mean_in_range} outside [1, {n_gateways}]"
        )));
    }
    let p = if n_gateways == 1 { 0.0 } else { (mean_in_range - 1.0) / (n_gateways as f64 - 1.0) };
    let links = home
        .iter()
        .map(|&h| {
            let mut ls = vec![Link { gateway: h, rate_bps: channel.home_bps }];
            for g in 0..n_gateways {
                if g != h && rng.chance(p) {
                    ls.push(Link { gateway: g, rate_bps: channel.neighbor_bps });
                }
            }
            ls
        })
        .collect();
    Topology::new(n_gateways, home.to_vec(), links)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn homes(n_clients: usize, n_gateways: usize) -> Vec<usize> {
        (0..n_clients).map(|c| c % n_gateways).collect()
    }

    #[test]
    fn overlap_matches_paper_density() {
        let mut rng = SimRng::new(1);
        let home = homes(272, 40);
        let t = overlap_topology(&home, 40, 5.6, ChannelModel::default(), &mut rng).unwrap();
        assert_eq!(t.n_clients(), 272);
        let mean = t.mean_degree();
        assert!((mean - 5.6).abs() < 0.8, "mean networks in range {mean}");
        // Every client reaches home at 12 Mbps and neighbors at 6 Mbps.
        for c in 0..t.n_clients() {
            let h = t.home_of(c);
            assert_eq!(t.rate_bps(c, h), Some(12.0e6));
            for l in t.reachable(c) {
                if l.gateway != h {
                    assert_eq!(l.rate_bps, 6.0e6);
                }
            }
        }
    }

    #[test]
    fn clients_sharing_home_share_neighborhood() {
        let mut rng = SimRng::new(2);
        let home = homes(80, 10);
        let t = overlap_topology(&home, 10, 4.0, ChannelModel::default(), &mut rng).unwrap();
        // Clients 0 and 10 share home gateway 0, so they see the same set.
        let a: Vec<usize> = t.reachable(0).iter().map(|l| l.gateway).collect();
        let b: Vec<usize> = t.reachable(10).iter().map(|l| l.gateway).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn binomial_hits_target_mean() {
        let mut rng = SimRng::new(3);
        let home = homes(1000, 40);
        for target in [1.0, 2.0, 5.0, 10.0] {
            let t =
                binomial_topology(&home, 40, target, ChannelModel::default(), &mut rng).unwrap();
            let mean = t.mean_degree();
            assert!((mean - target).abs() < 0.35, "target {target}, got {mean}");
        }
    }

    #[test]
    fn binomial_mean_one_is_home_only() {
        let mut rng = SimRng::new(4);
        let home = homes(50, 10);
        let t = binomial_topology(&home, 10, 1.0, ChannelModel::default(), &mut rng).unwrap();
        for c in 0..50 {
            assert_eq!(t.reachable(c).len(), 1);
            assert_eq!(t.reachable(c)[0].gateway, t.home_of(c));
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        let mut rng = SimRng::new(5);
        let home = homes(4, 2);
        assert!(overlap_topology(&home, 2, 0.5, ChannelModel::default(), &mut rng).is_err());
        assert!(binomial_topology(&home, 2, 3.0, ChannelModel::default(), &mut rng).is_err());
        let bad = ChannelModel { home_bps: 1.0, neighbor_bps: 2.0 };
        assert!(overlap_topology(&home, 2, 2.0, bad, &mut rng).is_err());
    }
}
