//! # insomnia-wireless
//!
//! Wireless substrate for the *Insomnia in the Access* reproduction:
//!
//! * [`topology`] — client↔gateway reachability with per-link rates (the
//!   `w_ij` of the paper's Eq. 1),
//! * [`degree`] — Viger–Latapy-style random simple connected graphs with a
//!   prescribed degree sequence, used for the gateway overlap graph,
//! * [`builder`] — the paper's two topology settings: household overlap
//!   (mean 5.6 networks in range) and binomial density sweeps (Fig. 10),
//! * [`virtualnic`] — the FatVAP/THEMIS TDMA model of a single virtualized
//!   radio (100 ms period, 60% to the selected gateway),
//! * [`seqnum`] — passive load estimation from 802.11 MAC sequence numbers,
//! * [`estimator`] — byte-based sliding-window load tracking,
//! * [`shard`] — splitting one scenario's population into independent
//!   DSLAM-neighborhood shards, each with its own (small) topology.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod channel;
pub mod degree;
pub mod estimator;
pub mod seqnum;
pub mod shard;
pub mod topology;
pub mod virtualnic;

pub use builder::{binomial_topology, overlap_topology};
pub use channel::ChannelModel;
pub use degree::{household_degree_sequence, is_graphical, prescribed_degree_graph, Graph};
pub use estimator::LoadWindow;
pub use seqnum::{SeqCounter, SeqNumEstimator, SEQ_MODULUS};
pub use shard::{
    max_per_shard, min_per_shard, shard_spans, topology_pair_count, ShardSpan, MAX_TOPOLOGY_PAIRS,
};
pub use topology::{Link, Topology};
pub use virtualnic::TdmaSchedule;
