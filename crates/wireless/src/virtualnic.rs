//! FatVAP/THEMIS-style virtualized wireless card (§3.2, §5.3).
//!
//! BH2 terminals stay associated with *all* gateways in range using a
//! single radio: the card is virtualized and time-division multiplexed with
//! a fixed period (100 ms in the paper's implementation), devoting a large
//! share (60%) to the currently selected gateway — enough to collect the
//! full ADSL backhaul bandwidth — and splitting the rest evenly across the
//! remaining gateways to keep estimating their load.

use serde::{Deserialize, Serialize};

/// TDMA schedule of one virtualized wireless card.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TdmaSchedule {
    /// Cycle period in milliseconds (paper: 100 ms).
    pub period_ms: u64,
    /// Fraction of the period devoted to the selected gateway (paper: 0.6).
    pub selected_share: f64,
}

impl Default for TdmaSchedule {
    fn default() -> Self {
        TdmaSchedule { period_ms: 100, selected_share: 0.6 }
    }
}

impl TdmaSchedule {
    /// Validates the schedule parameters.
    pub fn is_valid(&self) -> bool {
        self.period_ms > 0 && self.selected_share > 0.0 && self.selected_share <= 1.0
    }

    /// Effective data throughput towards the selected gateway given the raw
    /// wireless link rate: the card only listens there 60% of the time.
    pub fn effective_selected_bps(&self, raw_bps: f64) -> f64 {
        raw_bps * self.selected_share
    }

    /// Fraction of the period each *monitored* (non-selected) gateway gets
    /// when `n_others` gateways share the remainder.
    pub fn monitor_share(&self, n_others: usize) -> f64 {
        if n_others == 0 {
            0.0
        } else {
            (1.0 - self.selected_share) / n_others as f64
        }
    }

    /// Milliseconds per period spent on one monitored gateway.
    pub fn monitor_slot_ms(&self, n_others: usize) -> f64 {
        self.monitor_share(n_others) * self.period_ms as f64
    }

    /// Checks the paper's feasibility claim: the 60% share collects the full
    /// backhaul bandwidth iff `selected_share × wireless ≥ backhaul`.
    pub fn can_drain_backhaul(&self, wireless_bps: f64, backhaul_bps: f64) -> bool {
        self.effective_selected_bps(wireless_bps) >= backhaul_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let t = TdmaSchedule::default();
        assert_eq!(t.period_ms, 100);
        assert!((t.selected_share - 0.6).abs() < 1e-12);
        assert!(t.is_valid());
    }

    #[test]
    fn testbed_feasibility_claim_holds() {
        // §5.3: 3 Mbps ADSL, wireless > 6 Mbps ⇒ 60% suffices.
        let t = TdmaSchedule::default();
        assert!(t.can_drain_backhaul(6.0e6, 3.0e6));
        // Main scenario home link: 12 Mbps wireless vs 6 Mbps ADSL.
        assert!(t.can_drain_backhaul(12.0e6, 6.0e6));
        // A neighbor link at 6 Mbps cannot drain a 6 Mbps backhaul at 60%.
        assert!(!t.can_drain_backhaul(6.0e6, 6.0e6));
    }

    #[test]
    fn monitor_slots_split_evenly() {
        let t = TdmaSchedule::default();
        // 4.5 gateways in range on average besides the selected one.
        assert!((t.monitor_share(4) - 0.1).abs() < 1e-12);
        assert!((t.monitor_slot_ms(4) - 10.0).abs() < 1e-12);
        assert_eq!(t.monitor_share(0), 0.0);
    }

    #[test]
    fn effective_rate_scales() {
        let t = TdmaSchedule::default();
        assert!((t.effective_selected_bps(10.0e6) - 6.0e6).abs() < 1e-6);
    }

    #[test]
    fn validity() {
        assert!(!TdmaSchedule { period_ms: 0, selected_share: 0.6 }.is_valid());
        assert!(!TdmaSchedule { period_ms: 100, selected_share: 0.0 }.is_valid());
        assert!(!TdmaSchedule { period_ms: 100, selected_share: 1.1 }.is_valid());
    }
}
