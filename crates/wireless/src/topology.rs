//! Client ↔ gateway reachability with per-link available bandwidth.
//!
//! This is the `w_ij` of the paper's problem formulation (§3.1): the maximum
//! available bandwidth between user `i` and gateway `j` given the wireless
//! channel, with `w_ij = 0` meaning "out of range".

use insomnia_simcore::{SimError, SimResult};
use serde::{Deserialize, Serialize};

/// A reachable gateway and the wireless rate towards it, in bit/s.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Gateway index.
    pub gateway: usize,
    /// Maximum available wireless bandwidth on this link, bit/s.
    pub rate_bps: f64,
}

/// Bipartite reachability between clients and gateways.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    n_gateways: usize,
    /// `links[c]` lists the gateways client `c` can reach, sorted by index;
    /// always contains the client's home gateway.
    links: Vec<Vec<Link>>,
    /// `home[c]` is client `c`'s own gateway.
    home: Vec<usize>,
}

impl Topology {
    /// Builds a topology from per-client home gateways and link lists.
    ///
    /// Each client's link list is sorted and must include its home gateway;
    /// duplicate gateway entries are rejected.
    pub fn new(n_gateways: usize, home: Vec<usize>, mut links: Vec<Vec<Link>>) -> SimResult<Self> {
        if home.len() != links.len() {
            return Err(SimError::InvalidInput("home/links length mismatch".into()));
        }
        for (c, ls) in links.iter_mut().enumerate() {
            ls.sort_by_key(|l| l.gateway);
            if ls.windows(2).any(|w| w[0].gateway == w[1].gateway) {
                return Err(SimError::InvalidInput(format!("client {c} has duplicate links")));
            }
            if ls.iter().any(|l| l.gateway >= n_gateways) {
                return Err(SimError::InvalidInput(format!("client {c} links out of range")));
            }
            if ls.iter().any(|l| !(l.rate_bps > 0.0)) {
                return Err(SimError::InvalidInput(format!("client {c} has non-positive rate")));
            }
            if home[c] >= n_gateways {
                return Err(SimError::InvalidInput(format!("client {c} home out of range")));
            }
            if !ls.iter().any(|l| l.gateway == home[c]) {
                return Err(SimError::InvalidInput(format!(
                    "client {c} cannot reach its own home gateway"
                )));
            }
        }
        Ok(Topology { n_gateways, links, home })
    }

    /// Number of clients.
    pub fn n_clients(&self) -> usize {
        self.links.len()
    }

    /// Number of gateways.
    pub fn n_gateways(&self) -> usize {
        self.n_gateways
    }

    /// Client `c`'s home gateway.
    pub fn home_of(&self, c: usize) -> usize {
        self.home[c]
    }

    /// Gateways reachable by client `c` (sorted by index, includes home).
    pub fn reachable(&self, c: usize) -> &[Link] {
        &self.links[c]
    }

    /// Wireless rate between client `c` and gateway `g`, if in range.
    pub fn rate_bps(&self, c: usize, g: usize) -> Option<f64> {
        self.links[c]
            .binary_search_by_key(&g, |l| l.gateway)
            .ok()
            .map(|i| self.links[c][i].rate_bps)
    }

    /// True if client `c` can reach gateway `g`.
    pub fn in_range(&self, c: usize, g: usize) -> bool {
        self.rate_bps(c, g).is_some()
    }

    /// Mean number of gateways in range per client ("networks in range";
    /// the paper's scenario has 5.6).
    pub fn mean_degree(&self) -> f64 {
        if self.links.is_empty() {
            return 0.0;
        }
        self.links.iter().map(|l| l.len()).sum::<usize>() as f64 / self.links.len() as f64
    }

    /// Clients that can reach gateway `g`.
    pub fn clients_in_range_of(&self, g: usize) -> Vec<usize> {
        (0..self.n_clients()).filter(|&c| self.in_range(c, g)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(g: usize, mbps: f64) -> Link {
        Link { gateway: g, rate_bps: mbps * 1e6 }
    }

    fn simple() -> Topology {
        Topology::new(
            3,
            vec![0, 1],
            vec![
                vec![link(0, 12.0), link(1, 6.0)],
                vec![link(1, 12.0), link(0, 6.0), link(2, 6.0)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn accessors_work() {
        let t = simple();
        assert_eq!(t.n_clients(), 2);
        assert_eq!(t.n_gateways(), 3);
        assert_eq!(t.home_of(0), 0);
        assert_eq!(t.rate_bps(0, 0), Some(12e6));
        assert_eq!(t.rate_bps(0, 2), None);
        assert!(t.in_range(1, 2));
        assert!((t.mean_degree() - 2.5).abs() < 1e-12);
        assert_eq!(t.clients_in_range_of(1), vec![0, 1]);
        assert_eq!(t.clients_in_range_of(2), vec![1]);
    }

    #[test]
    fn links_are_sorted_even_if_input_is_not() {
        let t = simple();
        let gws: Vec<usize> = t.reachable(1).iter().map(|l| l.gateway).collect();
        assert_eq!(gws, vec![0, 1, 2]);
    }

    #[test]
    fn rejects_home_not_in_links() {
        let err = Topology::new(2, vec![1], vec![vec![link(0, 6.0)]]);
        assert!(err.is_err());
    }

    #[test]
    fn rejects_duplicate_links() {
        let err = Topology::new(2, vec![0], vec![vec![link(0, 6.0), link(0, 12.0)]]);
        assert!(err.is_err());
    }

    #[test]
    fn rejects_out_of_range_gateway() {
        let err = Topology::new(2, vec![0], vec![vec![link(0, 6.0), link(5, 6.0)]]);
        assert!(err.is_err());
    }

    #[test]
    fn rejects_zero_rate() {
        let err = Topology::new(1, vec![0], vec![vec![Link { gateway: 0, rate_bps: 0.0 }]]);
        assert!(err.is_err());
    }

    #[test]
    fn rejects_length_mismatch() {
        let err = Topology::new(1, vec![0, 0], vec![vec![link(0, 6.0)]]);
        assert!(err.is_err());
    }
}
