//! Random simple connected graphs with a prescribed degree sequence.
//!
//! The paper (§5.1) builds its wireless overlap topology with the generator
//! of Viger & Latapy ("Efficient and simple generation of random simple
//! connected graphs with prescribed degree sequence", COCOON'05): realize
//! the degree sequence as a simple graph, randomize it with double edge
//! swaps, and restore connectivity with swaps that preserve degrees. This
//! module implements that pipeline for the gateway overlap graph.

use insomnia_simcore::{SimError, SimResult, SimRng};
use std::collections::HashSet;

/// An undirected simple graph on `n` nodes stored as adjacency sets.
#[derive(Debug, Clone)]
pub struct Graph {
    adj: Vec<HashSet<usize>>,
}

impl Graph {
    /// Creates an empty graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        Graph { adj: vec![HashSet::new(); n] }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.adj.iter().map(|a| a.len()).sum::<usize>() / 2
    }

    /// Adds the undirected edge `{u, v}`. No-op for self-loops/duplicates.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        if u != v {
            self.adj[u].insert(v);
            self.adj[v].insert(u);
        }
    }

    /// Removes the undirected edge `{u, v}` if present.
    pub fn remove_edge(&mut self, u: usize, v: usize) {
        self.adj[u].remove(&v);
        self.adj[v].remove(&u);
    }

    /// True if `{u, v}` is an edge.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u].contains(&v)
    }

    /// Degree of node `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Neighbors of `u`, sorted (for deterministic iteration).
    pub fn neighbors(&self, u: usize) -> Vec<usize> {
        let mut ns: Vec<usize> = self.adj[u].iter().copied().collect();
        ns.sort_unstable();
        ns
    }

    /// All edges as sorted `(u, v)` pairs with `u < v`.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.m());
        for (u, ns) in self.adj.iter().enumerate() {
            for &v in ns {
                if u < v {
                    out.push((u, v));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Connected components as lists of nodes.
    pub fn components(&self) -> Vec<Vec<usize>> {
        let n = self.n();
        let mut seen = vec![false; n];
        let mut out = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut comp = Vec::new();
            let mut stack = vec![start];
            seen[start] = true;
            while let Some(u) = stack.pop() {
                comp.push(u);
                for &v in &self.adj[u] {
                    if !seen[v] {
                        seen[v] = true;
                        stack.push(v);
                    }
                }
            }
            comp.sort_unstable();
            out.push(comp);
        }
        out
    }

    /// True if the graph is connected (singleton graphs count as connected).
    pub fn is_connected(&self) -> bool {
        self.components().len() <= 1
    }
}

/// Generates a random simple *connected* graph with the given degree
/// sequence, following Viger–Latapy: Havel–Hakimi realization, edge-swap
/// randomization, connectivity repair via degree-preserving swaps.
///
/// Fails if the sequence is not graphical or cannot be connected (sum of
/// degrees < 2(n−1) or any degree is 0 with n > 1).
pub fn prescribed_degree_graph(degrees: &[usize], rng: &mut SimRng) -> SimResult<Graph> {
    let n = degrees.len();
    if n == 0 {
        return Err(SimError::InvalidInput("empty degree sequence".into()));
    }
    let sum: usize = degrees.iter().sum();
    if !sum.is_multiple_of(2) {
        return Err(SimError::InvalidInput("degree sum must be even".into()));
    }
    if n > 1 && degrees.contains(&0) {
        return Err(SimError::InvalidInput("zero-degree node cannot be connected".into()));
    }
    if sum / 2 < n.saturating_sub(1) {
        return Err(SimError::InvalidInput("too few edges to connect the graph".into()));
    }

    let mut g = havel_hakimi(degrees)?;
    let swap_attempts = 10 * g.m().max(1);
    randomize_edges(&mut g, rng, swap_attempts);
    connect(&mut g, rng)?;
    debug_assert!(g.is_connected());
    debug_assert!((0..n).all(|u| g.degree(u) == degrees[u]));
    Ok(g)
}

/// Havel–Hakimi: deterministic realization of a graphical sequence.
fn havel_hakimi(degrees: &[usize]) -> SimResult<Graph> {
    let n = degrees.len();
    let mut g = Graph::new(n);
    let mut remaining: Vec<(usize, usize)> = degrees.iter().copied().zip(0..n).collect();
    loop {
        remaining.sort_unstable_by(|a, b| b.cmp(a));
        let (d, u) = remaining[0];
        if d == 0 {
            break;
        }
        if d >= remaining.len() {
            return Err(SimError::InvalidInput("degree sequence not graphical".into()));
        }
        for item in remaining.iter_mut().take(d + 1).skip(1) {
            if item.0 == 0 {
                return Err(SimError::InvalidInput("degree sequence not graphical".into()));
            }
            g.add_edge(u, item.1);
            item.0 -= 1;
        }
        remaining[0].0 = 0;
    }
    Ok(g)
}

/// Randomizes a graph in place with double edge swaps that keep it simple
/// and preserve all degrees.
fn randomize_edges(g: &mut Graph, rng: &mut SimRng, attempts: usize) {
    let mut edges = g.edges();
    if edges.len() < 2 {
        return;
    }
    for _ in 0..attempts {
        let i = rng.below_usize(edges.len());
        let j = rng.below_usize(edges.len());
        if i == j {
            continue;
        }
        let (a, b) = edges[i];
        let (c, d) = edges[j];
        // Swap to (a,c),(b,d) or (a,d),(b,c), chosen at random.
        let ((p, q), (r, s)) = if rng.chance(0.5) { ((a, c), (b, d)) } else { ((a, d), (b, c)) };
        if p == q || r == s || g.has_edge(p, q) || g.has_edge(r, s) {
            continue;
        }
        g.remove_edge(a, b);
        g.remove_edge(c, d);
        g.add_edge(p, q);
        g.add_edge(r, s);
        edges[i] = if p < q { (p, q) } else { (q, p) };
        edges[j] = if r < s { (r, s) } else { (s, r) };
    }
}

/// Makes the graph connected with degree-preserving swaps: take an edge
/// `(c, d)` inside a cycle-containing component and an edge `(a, b)` of
/// another component, rewire to `(a, d), (c, b)`. Falls back to an error if
/// the structure makes repair impossible within a bounded number of rounds.
fn connect(g: &mut Graph, rng: &mut SimRng) -> SimResult<()> {
    for _round in 0..4 * g.n().max(4) {
        let comps = g.components();
        if comps.len() <= 1 {
            return Ok(());
        }
        // Pick any edge from the first component and any from the second;
        // a double swap merges the two components while preserving degrees.
        let edge_in = |comp: &[usize], g: &Graph, rng: &mut SimRng| -> Option<(usize, usize)> {
            let mut candidates: Vec<(usize, usize)> = Vec::new();
            for &u in comp {
                for v in g.neighbors(u) {
                    if u < v {
                        candidates.push((u, v));
                    }
                }
            }
            if candidates.is_empty() {
                None
            } else {
                Some(candidates[rng.below_usize(candidates.len())])
            }
        };
        let (a, b) = edge_in(&comps[0], g, rng)
            .ok_or_else(|| SimError::InvalidInput("isolated component without edges".into()))?;
        let (c, d) = edge_in(&comps[1], g, rng)
            .ok_or_else(|| SimError::InvalidInput("isolated component without edges".into()))?;
        // (a,c) and (b,d) are cross-component, hence cannot be existing edges.
        g.remove_edge(a, b);
        g.remove_edge(c, d);
        g.add_edge(a, c);
        g.add_edge(b, d);
    }
    if g.is_connected() {
        Ok(())
    } else {
        Err(SimError::BudgetExhausted("connectivity repair did not converge".into()))
    }
}

/// Draws a right-skewed degree sequence with the given mean (matching the
/// per-household "networks in range" distributions measured in the paper's
/// references): shifted Poisson with a minimum overlap of two (urban
/// deployments in the cited measurements see several networks everywhere),
/// clamped to `[2, n-1]`, parity-corrected.
pub fn household_degree_sequence(n: usize, mean: f64, rng: &mut SimRng) -> Vec<usize> {
    assert!(n >= 3, "need at least three gateways");
    assert!(mean >= 2.0, "mean gateway-overlap degree below 2 unsupported");
    // Rejection-sample until the sequence is graphical (Erdős–Gallai) —
    // clamping high draws to n−1 on small graphs can otherwise produce
    // unrealizable sequences.
    for _ in 0..200 {
        let mut degrees: Vec<usize> = (0..n)
            .map(|_| {
                let d = 2 + rng.poisson((mean - 2.0).max(0.0)) as usize;
                d.min(n - 1)
            })
            .collect();
        // Parity fix: bump one node (without exceeding n-1).
        if degrees.iter().sum::<usize>() % 2 == 1 {
            if let Some(d) = degrees.iter_mut().find(|d| **d < n - 1) {
                *d += 1;
            } else {
                degrees[0] -= 1; // all at n-1 (only possible for tiny n)
            }
        }
        if is_graphical(&degrees) {
            return degrees;
        }
    }
    // Pathological parameters (mean ≈ n): fall back to a near-regular
    // sequence, which is always graphical for even sums.
    let d = (mean.round() as usize).clamp(2, n - 1);
    let mut degrees = vec![d; n];
    if degrees.iter().sum::<usize>() % 2 == 1 {
        degrees[0] = if d < n - 1 { d + 1 } else { d - 1 };
    }
    degrees
}

/// Erdős–Gallai test: is the (even-sum) degree sequence realizable as a
/// simple graph?
pub fn is_graphical(degrees: &[usize]) -> bool {
    let mut d: Vec<usize> = degrees.to_vec();
    d.sort_unstable_by(|a, b| b.cmp(a));
    let n = d.len();
    let total: usize = d.iter().sum();
    if !total.is_multiple_of(2) {
        return false;
    }
    if d.first().is_some_and(|&x| x >= n) {
        return false;
    }
    let mut lhs = 0usize;
    for k in 1..=n {
        lhs += d[k - 1];
        let rhs: usize = k * (k - 1) + d[k..].iter().map(|&x| x.min(k)).sum::<usize>();
        if lhs > rhs {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn havel_hakimi_realizes_simple_sequences() {
        let g = havel_hakimi(&[2, 2, 2]).unwrap(); // triangle
        assert_eq!(g.m(), 3);
        assert!(g.is_connected());
        let g = havel_hakimi(&[3, 1, 1, 1]).unwrap(); // star
        assert_eq!(g.degree(0), 3);
    }

    #[test]
    fn rejects_non_graphical() {
        assert!(havel_hakimi(&[3, 1, 1]).is_err()); // odd handshake handled upstream, this is ungraphical
        assert!(prescribed_degree_graph(&[5, 1, 1, 1, 1, 1], &mut SimRng::new(1)).is_ok());
        assert!(prescribed_degree_graph(&[4, 4, 1, 1], &mut SimRng::new(1)).is_err());
    }

    #[test]
    fn rejects_odd_sum_and_zero_degrees() {
        let mut rng = SimRng::new(2);
        assert!(prescribed_degree_graph(&[1, 1, 1], &mut rng).is_err());
        assert!(prescribed_degree_graph(&[0, 2, 2, 2], &mut rng).is_err());
    }

    #[test]
    fn preserves_degrees_and_connectivity() {
        let rng = SimRng::new(3);
        for seed in 0..5u64 {
            let mut r = rng.fork_idx("case", seed);
            let degrees = household_degree_sequence(40, 4.6, &mut r);
            let g = prescribed_degree_graph(&degrees, &mut r).unwrap();
            assert!(g.is_connected());
            for (u, &d) in degrees.iter().enumerate() {
                assert_eq!(g.degree(u), d, "node {u}");
            }
        }
    }

    #[test]
    fn randomization_changes_structure_but_not_degrees() {
        let degrees = vec![3usize; 20]; // 3-regular on 20 nodes
        let g1 = prescribed_degree_graph(&degrees, &mut SimRng::new(10)).unwrap();
        let g2 = prescribed_degree_graph(&degrees, &mut SimRng::new(11)).unwrap();
        assert_ne!(g1.edges(), g2.edges(), "different seeds should differ");
        assert!(g1.edges().len() == 30 && g2.edges().len() == 30);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let degrees = vec![4usize; 30];
        let g1 = prescribed_degree_graph(&degrees, &mut SimRng::new(7)).unwrap();
        let g2 = prescribed_degree_graph(&degrees, &mut SimRng::new(7)).unwrap();
        assert_eq!(g1.edges(), g2.edges());
    }

    #[test]
    fn household_sequence_hits_target_mean() {
        let mut rng = SimRng::new(4);
        let degrees = household_degree_sequence(400, 4.6, &mut rng);
        let mean = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
        assert!((mean - 4.6).abs() < 0.4, "mean degree {mean}");
        assert!(degrees.iter().all(|&d| (2..400).contains(&d)), "min overlap is 2");
        assert_eq!(degrees.iter().sum::<usize>() % 2, 0);
    }

    #[test]
    fn erdos_gallai_known_cases() {
        assert!(is_graphical(&[2, 2, 2])); // triangle
        assert!(is_graphical(&[3, 3, 3, 3])); // K4
        assert!(is_graphical(&[3, 1, 1, 1])); // star
        assert!(is_graphical(&[4, 1, 1, 1, 1, 0])); // K1,4 star + isolate
        assert!(!is_graphical(&[3, 1, 1])); // odd sum
        assert!(!is_graphical(&[4, 4, 1, 1])); // degree 4 impossible on 4 nodes
        assert!(!is_graphical(&[5, 5, 5, 1, 1, 1])); // Erdős–Gallai violation
    }

    #[test]
    fn components_and_edges_helpers() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        assert_eq!(g.components().len(), 3); // {0,1} {2,3} {4}
        assert!(!g.is_connected());
        assert_eq!(g.edges(), vec![(0, 1), (2, 3)]);
        g.add_edge(1, 1); // self loop ignored
        assert_eq!(g.m(), 2);
    }
}
