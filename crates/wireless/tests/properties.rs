//! Property-based tests of topology generation and load estimation.

use insomnia_simcore::SimRng;
use insomnia_wireless::{
    binomial_topology, household_degree_sequence, overlap_topology, prescribed_degree_graph,
    ChannelModel, LoadWindow, SeqCounter, SeqNumEstimator,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Prescribed-degree graphs exactly realize their sequence and are
    /// connected, for any feasible household sequence.
    #[test]
    fn degree_graphs_realize_sequence(seed in any::<u64>(), n in 6usize..60, mean in 2.5f64..6.0) {
        let mut rng = SimRng::new(seed);
        let degrees = household_degree_sequence(n, mean, &mut rng);
        let g = prescribed_degree_graph(&degrees, &mut rng).unwrap();
        prop_assert!(g.is_connected());
        for (u, &d) in degrees.iter().enumerate() {
            prop_assert_eq!(g.degree(u), d);
        }
        // Simple graph: no self loops (implied by API) and consistent edges.
        for (u, v) in g.edges() {
            prop_assert!(u < v);
            prop_assert!(g.has_edge(u, v) && g.has_edge(v, u));
        }
    }

    /// Overlap topologies keep every client attached to its home at the
    /// home rate, neighbors at the neighbor rate.
    #[test]
    fn overlap_topologies_are_well_formed(
        seed in any::<u64>(),
        n_gw in 4usize..30,
        clients_per_gw in 1usize..8,
        mean in 2.5f64..6.0,
    ) {
        let mut rng = SimRng::new(seed);
        let home: Vec<usize> = (0..n_gw * clients_per_gw).map(|c| c % n_gw).collect();
        let channel = ChannelModel::default();
        let t = overlap_topology(&home, n_gw, mean, channel, &mut rng).unwrap();
        for c in 0..t.n_clients() {
            let h = t.home_of(c);
            prop_assert_eq!(t.rate_bps(c, h), Some(channel.home_bps));
            for link in t.reachable(c) {
                if link.gateway != h {
                    prop_assert_eq!(link.rate_bps, channel.neighbor_bps);
                }
            }
            prop_assert!(!t.reachable(c).is_empty());
        }
    }

    /// Binomial topologies match their target density in expectation.
    #[test]
    fn binomial_density_is_calibrated(seed in any::<u64>(), mean in 1.0f64..10.0) {
        let mut rng = SimRng::new(seed);
        let n_gw = 40;
        let home: Vec<usize> = (0..400).map(|c| c % n_gw).collect();
        let t = binomial_topology(&home, n_gw, mean, ChannelModel::default(), &mut rng).unwrap();
        prop_assert!((t.mean_degree() - mean).abs() < 0.6,
            "target {mean}, got {}", t.mean_degree());
    }

    /// The SN estimator recovers any constant frame rate exactly,
    /// regardless of rate and observation cadence (while below the
    /// wraparound bound).
    #[test]
    fn seqnum_estimator_is_exact_for_constant_rates(
        fps in 1u64..1_500,
        cadence_ms in 200u64..2_000,
    ) {
        let mut gw = SeqCounter::new();
        let mut est = SeqNumEstimator::new(60_000);
        let mut t = 0u64;
        for _ in 0..50 {
            est.observe(t, gw.current_sn());
            // Frames sent during the next interval (kept below the 4096
            // wraparound bound by construction: 1500 fps × 2 s = 3000).
            gw.add_frames(fps * cadence_ms / 1_000);
            t += cadence_ms;
        }
        let measured = est.frames_per_sec().unwrap();
        let expected = (fps * cadence_ms / 1_000) as f64 * 1_000.0 / cadence_ms as f64;
        prop_assert!((measured - expected).abs() < 1e-6,
            "measured {measured} vs {expected}");
    }

    /// The load window's byte count equals the sum of deposits inside the
    /// window, for arbitrary deposit patterns.
    #[test]
    fn load_window_conserves_bytes(
        deposits in prop::collection::vec((0u64..120_000, 1u64..100_000), 1..100),
    ) {
        let window = 60_000u64;
        let mut w = LoadWindow::new(window);
        let mut sorted = deposits.clone();
        sorted.sort_by_key(|d| d.0);
        for &(t, b) in &sorted {
            w.add(t, b);
        }
        let now = sorted.last().unwrap().0;
        let expect: u64 = sorted
            .iter()
            .filter(|(t, _)| t + window > now)
            .map(|&(_, b)| b)
            .sum();
        prop_assert_eq!(w.bytes_in_window(now), expect);
    }
}
