//! Offline stand-in for `proptest`.
//!
//! Provides the strategy combinators and macros the workspace's property
//! tests use: range strategies, `any::<T>()`, `prop::collection::vec`,
//! tuples, `prop_map`, and the `proptest!` / `prop_assert!` macros. Cases
//! are generated from a deterministic per-test RNG (seeded from the test
//! name), run `ProptestConfig::cases` times, and failures panic like plain
//! assertions — there is no shrinking, so failing inputs print verbatim.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Deterministic test-case RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Seeds from a test name (FNV-1a).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        // Multiply-shift; bias is irrelevant for test-case generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// Controls how many random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Strategy combinators.
pub mod strategy {
    use super::TestRng;

    /// Generates values of `Self::Value` from randomness.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Filters generated values (regenerates until `f` accepts, with a
        /// retry cap).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            _whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Output of [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates in a row");
        }
    }

    /// A strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub use strategy::{Just, Strategy};

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> u16 {
        (rng.next_u64() >> 48) as u16
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy(std::marker::PhantomData)
}

/// Output of [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;

    fn sample(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact length or a half-open
    /// range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy for `Vec<S::Value>` with a random length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Output of [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + if span > 0 { rng.below(span) as usize } else { 0 };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `prop::` namespace, as re-exported by the real crate's prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

/// The prelude: strategies, config, and macros.
pub mod prelude {
    pub use crate::collection;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary};
}

/// Assertion inside a property (panics; no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    { #![proptest_config($cfg:expr)] $($rest:tt)* } => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    { $($rest:tt)* } => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal recursion for [`proptest!`] — one test item per step.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    { ($cfg:expr) } => {};
    { ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
      $($rest:tt)*
    } => {
        $(#[$meta])*
        #[allow(unused_parens)]
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let ($($pat),*) = ($($crate::strategy::Strategy::sample(&($strat), &mut __rng)),*);
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
