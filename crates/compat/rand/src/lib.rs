//! Offline stand-in for `rand`: the `SeedableRng` constructor trait and an
//! infallible [`Rng`] facade blanket-implemented for every
//! [`rand_core::TryRng`] whose error is [`Infallible`] — mirroring how the
//! real crates make `SimRng` interoperate with the rand ecosystem.

#![forbid(unsafe_code)]

use std::convert::Infallible;

pub use rand_core::TryRng;

/// A generator that can be constructed from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed material type.
    type Seed;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Infallible random number generator.
pub trait Rng {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dst` with random bytes.
    fn fill_bytes(&mut self, dst: &mut [u8]);
}

impl<T> Rng for T
where
    T: TryRng<Error = Infallible>,
{
    fn next_u32(&mut self) -> u32 {
        match self.try_next_u32() {
            Ok(x) => x,
            Err(e) => match e {},
        }
    }

    fn next_u64(&mut self) -> u64 {
        match self.try_next_u64() {
            Ok(x) => x,
            Err(e) => match e {},
        }
    }

    fn fill_bytes(&mut self, dst: &mut [u8]) {
        match self.try_fill_bytes(dst) {
            Ok(()) => {}
            Err(e) => match e {},
        }
    }
}
