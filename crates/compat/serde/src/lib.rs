//! Offline stand-in for `serde`.
//!
//! The build environment vendors no external crates, so this crate provides
//! the slice of serde the workspace uses: `Serialize`/`Deserialize` traits
//! over a self-describing [`Value`] tree, derive macros (re-exported from
//! the in-tree `serde_derive`), and impls for the std types that appear in
//! workspace structs. `serde_json` and `toml` front-ends layer text formats
//! on top of the same [`Value`].
//!
//! Semantics follow real serde where the workspace can observe them:
//! newtype structs serialize transparently, enums are externally tagged,
//! missing `Option` fields deserialize to `None`.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree: the interchange point between typed values
/// and text formats.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absence of a value (`null` in JSON; omitted in TOML).
    Null,
    /// A boolean.
    Bool(bool),
    /// Any integer (i128 covers the full u64 and i64 ranges).
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Value>),
    /// A map with insertion order preserved (field order of structs).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Map accessor.
    pub fn as_map(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Sequence accessor.
    pub fn as_seq(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// (De)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    pub fn new(msg: &str) -> Self {
        Error(msg.to_string())
    }

    /// "expected X, got <kind>" error.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error(format!("expected {what}, got {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Converts a typed value into a [`Value`] tree.
pub trait Serialize {
    /// Self → tree.
    fn to_value(&self) -> Value;
}

/// Rebuilds a typed value from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Tree → Self.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Fallback when a struct field is absent. `None` means "required";
    /// `Option<T>` overrides this to tolerate missing fields.
    fn from_missing() -> Option<Self> {
        None
    }
}

/// Derive-macro helper: required-unless-optional field lookup.
pub fn __field<T: Deserialize>(map: &[(String, Value)], name: &str) -> Result<T, Error> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| Error(format!("field `{name}`: {e}"))),
        None => T::from_missing().ok_or_else(|| Error(format!("missing field `{name}`"))),
    }
}

// `Value` round-trips through itself, so generic front-ends
// (`serde_json::from_str::<Value>`) can parse arbitrary documents for
// schema-agnostic processing (e.g. the JSONL compare tool).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error(format!("integer {i} out of range"))),
                    _ => Err(Error::expected("integer", v)),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(x) => Ok(*x as $t),
                    Value::Int(i) => Ok(*i as $t),
                    _ => Err(Error::expected("number", v)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            // Deserializing into `&'static str` fields (tone-plan names)
            // leaks the string; fine for the rare, small uses here.
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(Error::expected("string", v)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(s) => s.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("sequence", v)),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(s) => s.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("sequence", v)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error(format!("expected array of length {N}, got {n}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| Error::expected("sequence", v))?;
                let expect = [$($idx),+].len();
                if s.len() != expect {
                    return Err(Error(format!("expected tuple of {expect}, got {}", s.len())));
                }
                Ok(($($t::from_value(&s[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
