//! Offline stand-in for `serde_derive`.
//!
//! The build environment vendors no crates, so this proc-macro crate
//! re-implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! subset of shapes the workspace actually uses, parsing the item token
//! stream by hand (no `syn`/`quote`):
//!
//! * structs with named fields,
//! * tuple structs (newtypes serialize transparently, like real serde),
//! * enums with unit, tuple and struct variants (externally tagged).
//!
//! Generics are not supported and produce a compile error naming the type.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Ser)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::De)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Ser,
    De,
}

enum Shape {
    Named(Vec<String>),
    /// Tuple struct with this many fields.
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let (name, shape) = parse_item(input);
    let code = match mode {
        Mode::Ser => gen_serialize(&name, &shape),
        Mode::De => gen_deserialize(&name, &shape),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

/// Parses the derive input down to the type name and field/variant shape.
fn parse_item(input: TokenStream) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    loop {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2; // '#' + bracket group
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive: generic type `{name}` is not supported by the offline shim");
        }
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => panic!("serde_derive: unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unsupported enum body for {name}: {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}`"),
    };
    (name, shape)
}

/// Parses `ident: Type, ...` out of a brace-group stream, skipping
/// attributes and visibility. Type tokens are consumed with angle-bracket
/// depth tracking so generic types containing commas parse correctly.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) => {
                fields.push(id.to_string());
                i += 1;
                // Expect ':' then the type; consume until a comma at angle
                // depth zero.
                match &tokens[i] {
                    TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
                    other => panic!("serde_derive: expected `:` after field, got {other}"),
                }
                let mut depth = 0i32;
                while i < tokens.len() {
                    match &tokens[i] {
                        TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                            i += 1;
                            break;
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            other => panic!("serde_derive: unexpected token in fields: {other}"),
        }
    }
    fields
}

/// Counts the fields of a tuple struct body (`pub u32, pub f64`, ...).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut trailing = true;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                trailing = true;
                continue;
            }
            _ => {}
        }
        trailing = false;
    }
    if trailing {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            TokenTree::Ident(id) => {
                let name = id.to_string();
                i += 1;
                let shape = match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        i += 1;
                        VariantShape::Named(parse_named_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        i += 1;
                        VariantShape::Tuple(count_tuple_fields(g.stream()))
                    }
                    _ => VariantShape::Unit,
                };
                // Skip an explicit discriminant (`= expr`) if present.
                if let Some(TokenTree::Punct(p)) = tokens.get(i) {
                    if p.as_char() == '=' {
                        while i < tokens.len() {
                            if let TokenTree::Punct(p) = &tokens[i] {
                                if p.as_char() == ',' {
                                    break;
                                }
                            }
                            i += 1;
                        }
                    }
                }
                variants.push(Variant { name, shape });
            }
            other => panic!("serde_derive: unexpected token in enum body: {other}"),
        }
    }
    variants
}

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named(fields) => {
            let mut s = String::from("let mut __m = ::std::vec::Vec::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "__m.push((::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            s.push_str("::serde::Value::Map(__m)");
            s
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let mut s = String::from("let mut __v = ::std::vec::Vec::new();\n");
            for k in 0..*n {
                s.push_str(&format!("__v.push(::serde::Serialize::to_value(&self.{k}));\n"));
            }
            s.push_str("::serde::Value::Seq(__v)");
            s
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => s.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                        };
                        s.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(vec![(\
                             ::std::string::String::from(\"{vn}\"), {inner})]),\n",
                            binds.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let binds = fields.join(", ");
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        s.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Map(vec![{}]))]),\n",
                            items.join(", ")
                        ));
                    }
                }
            }
            s.push('}');
            s
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named(fields) => {
            let mut s = format!(
                "let __m = __v.as_map().ok_or_else(|| \
                 ::serde::Error::expected(\"map for struct {name}\", __v))?;\n"
            );
            s.push_str(&format!("::std::result::Result::Ok({name} {{\n"));
            for f in fields {
                s.push_str(&format!("{f}: ::serde::__field(__m, \"{f}\")?,\n"));
            }
            s.push_str("})");
            s
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::Tuple(n) => {
            let mut s = format!(
                "let __s = __v.as_seq().ok_or_else(|| \
                 ::serde::Error::expected(\"sequence for tuple struct {name}\", __v))?;\n\
                 if __s.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::Error::new(\"wrong tuple arity for {name}\")); }}\n"
            );
            let items: Vec<String> =
                (0..*n).map(|k| format!("::serde::Deserialize::from_value(&__s[{k}])?")).collect();
            s.push_str(&format!("::std::result::Result::Ok({name}({}))", items.join(", ")));
            s
        }
        Shape::Unit => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            // Externally tagged: "Variant" or {"Variant": payload}.
            let mut s = String::from(
                "if let ::std::option::Option::Some(__tag) = __v.as_str() {\n\
                 match __tag {\n",
            );
            for v in variants {
                if matches!(v.shape, VariantShape::Unit) {
                    s.push_str(&format!(
                        "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}),\n",
                        vn = v.name
                    ));
                }
            }
            s.push_str(&format!(
                "__other => return ::std::result::Result::Err(::serde::Error::new(\
                 &format!(\"unknown variant `{{__other}}` of {name}\"))),\n}}\n}}\n"
            ));
            s.push_str(
                "let __m = __v.as_map().ok_or_else(|| \
                 ::serde::Error::expected(\"string or map for enum\", __v))?;\n\
                 let (__tag, __payload) = match __m.first() {\n\
                 ::std::option::Option::Some((k, p)) if __m.len() == 1 => (k.as_str(), p),\n\
                 _ => return ::std::result::Result::Err(::serde::Error::new(\
                 \"enum map must have exactly one key\")),\n};\n",
            );
            s.push_str("match __tag {\n");
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => s.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantShape::Tuple(1) => s.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::from_value(__payload)?)),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&__s[{k}])?"))
                            .collect();
                        s.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __s = __payload.as_seq().ok_or_else(|| \
                             ::serde::Error::expected(\"sequence\", __payload))?;\n\
                             if __s.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::Error::new(\"wrong arity\")); }}\n\
                             ::std::result::Result::Ok({name}::{vn}({}))\n}}\n",
                            items.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::__field(__fm, \"{f}\")?"))
                            .collect();
                        s.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __fm = __payload.as_map().ok_or_else(|| \
                             ::serde::Error::expected(\"map\", __payload))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{ {} }})\n}}\n",
                            items.join(", ")
                        ));
                    }
                }
            }
            s.push_str(&format!(
                "__other => ::std::result::Result::Err(::serde::Error::new(\
                 &format!(\"unknown variant `{{__other}}` of {name}\"))),\n}}"
            ));
            s
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}
