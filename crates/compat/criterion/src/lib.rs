//! Offline stand-in for `criterion`.
//!
//! Provides the macro/trait surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `bench_function`,
//! `benchmark_group`) with a minimal runner: each bench closure executes a
//! small fixed number of iterations and the mean wall-clock time is printed.
//! No statistics, no HTML reports — just enough to keep `cargo bench`
//! meaningful offline.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Number of timed iterations per bench (plus one warm-up).
const ITERS: u32 = 3;

/// Bench registry and runner.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { total_ns: 0, iters: 0 };
        f(&mut b);
        b.report(name.as_ref());
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, prefix: name.to_string() }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim ignores sample sizes.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim ignores measurement time.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { total_ns: 0, iters: 0 };
        f(&mut b);
        b.report(&format!("{}/{}", self.prefix, name.as_ref()));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Timing harness handed to each bench closure.
pub struct Bencher {
    total_ns: u128,
    iters: u32,
}

impl Bencher {
    /// Times `f` over a fixed number of iterations (after one warm-up).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        for _ in 0..ITERS {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.total_ns += t0.elapsed().as_nanos();
            self.iters += 1;
        }
    }

    fn report(&self, name: &str) {
        if self.iters > 0 {
            let mean = self.total_ns / u128::from(self.iters);
            println!("bench {name:<48} {:>12.3} ms/iter", mean as f64 / 1e6);
        } else {
            println!("bench {name:<48} (no iterations)");
        }
    }
}

/// Re-export point used by generated code and benches.
pub use std::hint::black_box;

/// Declares a bench group function running each listed bench.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
