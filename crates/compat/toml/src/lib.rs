//! Offline stand-in for the `toml` crate, covering the subset the scenario
//! subsystem needs:
//!
//! * top-level and `[dotted.table]` sections,
//! * `key = value` with strings, integers, floats, booleans and arrays,
//! * dotted keys (`bh2.low_threshold = 0.05`),
//! * `#` comments and blank lines.
//!
//! Values parse into the mini-serde [`Value`] tree, so any
//! `#[derive(Serialize, Deserialize)]` type round-trips through TOML text.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Deserializes a typed value from TOML text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&parse_document(s)?)
}

/// Parses TOML text into a [`Value::Map`] tree.
pub fn parse_document(s: &str) -> Result<Value, Error> {
    let mut root: Vec<(String, Value)> = Vec::new();
    // Path of the currently open `[section]`; empty = top level.
    let mut section: Vec<String> = Vec::new();
    for (lineno, raw) in s.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| Error::new(&format!("line {}: {msg}", lineno + 1));
        if let Some(rest) = line.strip_prefix('[') {
            let inner = rest.strip_suffix(']').ok_or_else(|| err("unclosed `[section]`"))?.trim();
            if inner.is_empty() || inner.starts_with('[') {
                return Err(err("unsupported section header"));
            }
            section = inner.split('.').map(|p| p.trim().to_string()).collect();
            // Materialize the section so empty tables still deserialize.
            ensure_table(&mut root, &section);
        } else {
            let (key, val) = line.split_once('=').ok_or_else(|| err("expected `key = value`"))?;
            let mut path = section.clone();
            path.extend(key.trim().split('.').map(|p| p.trim().to_string()));
            let value = parse_value(val.trim()).map_err(|e| err(&e.to_string()))?;
            insert(&mut root, &path, value).map_err(|e| err(&e.to_string()))?;
        }
    }
    Ok(Value::Map(root))
}

/// Serializes a typed value to TOML text. The root must serialize to a map.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = value.to_value();
    let Value::Map(entries) = &v else {
        return Err(Error::new("TOML documents must be maps at the root"));
    };
    let mut out = String::new();
    write_table(&mut out, entries, &[])?;
    Ok(out)
}

fn strip_comment(line: &str) -> &str {
    // No escape handling needed: a `#` inside a basic string is the only
    // false positive, so scan with a quote flag.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn ensure_table<'a>(
    root: &'a mut Vec<(String, Value)>,
    path: &[String],
) -> &'a mut Vec<(String, Value)> {
    if path.is_empty() {
        return root;
    }
    let key = &path[0];
    let idx = match root.iter().position(|(k, _)| k == key) {
        Some(i) => i,
        None => {
            root.push((key.clone(), Value::Map(Vec::new())));
            root.len() - 1
        }
    };
    // Key already holding a scalar is replaced with a table (later
    // assignments win, matching `insert`).
    if !matches!(root[idx].1, Value::Map(_)) {
        root[idx].1 = Value::Map(Vec::new());
    }
    match &mut root[idx].1 {
        Value::Map(m) => ensure_table(m, &path[1..]),
        _ => unreachable!(),
    }
}

fn insert(root: &mut Vec<(String, Value)>, path: &[String], value: Value) -> Result<(), Error> {
    let (last, parents) = path.split_last().expect("non-empty key path");
    let table = ensure_table(root, parents);
    match table.iter_mut().find(|(k, _)| k == last) {
        Some((_, slot)) => {
            // Later assignments win: this is what lets sweep overrides and
            // preset overlays merge TOML fragments.
            *slot = value;
        }
        None => table.push((last.clone(), value)),
    }
    Ok(())
}

fn parse_value(s: &str) -> Result<Value, Error> {
    if s.is_empty() {
        return Err(Error::new("empty value"));
    }
    if let Some(rest) = s.strip_prefix('"') {
        let inner = rest.strip_suffix('"').ok_or_else(|| Error::new("unterminated string"))?;
        return Ok(Value::Str(unescape(inner)?));
    }
    if s == "true" {
        return Ok(Value::Bool(true));
    }
    if s == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(rest) = s.strip_prefix('[') {
        let inner = rest.strip_suffix(']').ok_or_else(|| Error::new("unterminated array"))?;
        let mut items = Vec::new();
        for part in split_top_level(inner) {
            let part = part.trim();
            if !part.is_empty() {
                items.push(parse_value(part)?);
            }
        }
        return Ok(Value::Seq(items));
    }
    let cleaned: String = s.chars().filter(|c| *c != '_').collect();
    if cleaned.contains(['.', 'e', 'E'])
        || cleaned == "inf"
        || cleaned == "-inf"
        || cleaned == "nan"
    {
        if let Ok(x) = cleaned.parse::<f64>() {
            return Ok(Value::Float(x));
        }
    }
    if let Ok(i) = cleaned.parse::<i128>() {
        return Ok(Value::Int(i));
    }
    if let Ok(x) = cleaned.parse::<f64>() {
        return Ok(Value::Float(x));
    }
    Err(Error::new(&format!("cannot parse value `{s}`")))
}

/// Splits an array body on commas that are not nested in strings/brackets.
fn split_top_level(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            '[' if !in_str => {
                depth += 1;
                cur.push(c);
            }
            ']' if !in_str => {
                depth -= 1;
                cur.push(c);
            }
            ',' if !in_str && depth == 0 => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur);
    }
    parts
}

fn unescape(s: &str) -> Result<String, Error> {
    let mut out = String::new();
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            other => return Err(Error::new(&format!("unknown escape {other:?}"))),
        }
    }
    Ok(out)
}

fn write_table(out: &mut String, entries: &[(String, Value)], path: &[&str]) -> Result<(), Error> {
    // Scalars and arrays first, then sub-tables as sections — the classic
    // TOML layout.
    let mut tables = Vec::new();
    let mut wrote_scalar = false;
    for (k, v) in entries {
        match v {
            Value::Map(m) => tables.push((k.as_str(), m)),
            Value::Null => {} // omitted: TOML has no null
            other => {
                out.push_str(k);
                out.push_str(" = ");
                write_inline(out, other)?;
                out.push('\n');
                wrote_scalar = true;
            }
        }
    }
    for (k, m) in tables {
        let mut sub: Vec<&str> = path.to_vec();
        sub.push(k);
        if wrote_scalar || !out.is_empty() {
            out.push('\n');
        }
        out.push('[');
        out.push_str(&sub.join("."));
        out.push_str("]\n");
        write_table(out, m, &sub)?;
    }
    Ok(())
}

fn write_inline(out: &mut String, v: &Value) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("\"\""),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => {
            let s = format!("{x}");
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E', 'n', 'i']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_inline(out, item)?;
            }
            out.push(']');
        }
        Value::Map(_) => {
            return Err(Error::new("nested inline tables are not supported"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_dotted_keys_and_comments() {
        let doc = r#"
# header
name = "rural-sparse"  # inline comment
seeds = [1, 2, 3]
bh2.low_threshold = 0.05

[trace]
n_clients = 120
rate_scale = 0.6
"#;
        let v = parse_document(doc).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("rural-sparse"));
        assert_eq!(v.get("seeds").unwrap().as_seq().unwrap().len(), 3);
        let bh2 = v.get("bh2").unwrap();
        assert_eq!(bh2.get("low_threshold"), Some(&Value::Float(0.05)));
        let trace = v.get("trace").unwrap();
        assert_eq!(trace.get("n_clients"), Some(&Value::Int(120)));
    }

    #[test]
    fn document_roundtrips() {
        let v = Value::Map(vec![
            ("a".into(), Value::Int(1)),
            ("s".into(), Value::Str("x".into())),
            (
                "t".into(),
                Value::Map(vec![
                    ("b".into(), Value::Float(0.5)),
                    ("flag".into(), Value::Bool(true)),
                ]),
            ),
        ]);
        let text = {
            let Value::Map(entries) = &v else { unreachable!() };
            let mut out = String::new();
            write_table(&mut out, entries, &[]).unwrap();
            out
        };
        let back = parse_document(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn later_assignment_wins() {
        let v = parse_document("a = 1\na = 2\n").unwrap();
        assert_eq!(v.get("a"), Some(&Value::Int(2)));
    }
}
