//! Offline stand-in for `serde_json`: JSON text over the in-tree
//! mini-serde [`Value`] model.
//!
//! The printer is deterministic: struct fields keep declaration order and
//! floats use Rust's shortest-roundtrip formatting, so identical values
//! always produce identical bytes — a property the batch runner's JSONL
//! determinism test relies on.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::io::{Read, Write};

pub use serde::Error;

/// Serializes a value to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value())?;
    Ok(out)
}

/// Serializes a value into a writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut w: W, value: &T) -> Result<(), Error> {
    let s = to_string(value)?;
    w.write_all(s.as_bytes()).map_err(|e| Error::new(&format!("io: {e}")))
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(&format!("trailing bytes at offset {}", p.pos)));
    }
    T::from_value(&v)
}

/// Deserializes a value from a reader.
pub fn from_reader<R: Read, T: Deserialize>(mut r: R) -> Result<T, Error> {
    let mut s = String::new();
    r.read_to_string(&mut s).map_err(|e| Error::new(&format!("io: {e}")))?;
    from_str(&s)
}

fn write_value(out: &mut String, v: &Value) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error::new("JSON cannot represent non-finite floats"));
            }
            // Keep floats self-identifying so integers round-trip as Int.
            let s = format!("{x}");
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(&format!("expected `{}` at offset {}", b as char, self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            // Non-finite extensions (as emitted by e.g. Python's json
            // module): accepted on input so the compare gate can diff
            // foreign JSONL; our own writer stays strictly finite.
            Some(b'N') => self.literal("NaN", Value::Float(f64::NAN)),
            Some(b'I') => self.literal("Infinity", Value::Float(f64::INFINITY)),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::new(&format!("unexpected byte at offset {}", self.pos))),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(&format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
            if self.peek() == Some(b'I') {
                return self.literal("Infinity", Value::Float(f64::NEG_INFINITY));
            }
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid utf8 in number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(&format!("bad float `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::new(&format!("bad integer `{text}`")))
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error::new("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad unicode scalar"))?,
                            );
                        }
                        _ => return Err(Error::new("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at pos-1.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(Error::new("truncated utf8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid utf8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(&format!("bad array at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(&format!("bad object at offset {}", self.pos))),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Value::Map(vec![
            ("a".into(), Value::Int(3)),
            ("b".into(), Value::Seq(vec![Value::Float(1.5), Value::Bool(true)])),
            ("c".into(), Value::Str("x\"y\n".into())),
        ]);
        let mut s = String::new();
        write_value(&mut s, &v).unwrap();
        let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
        let back = p.value().unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn integral_floats_stay_floats() {
        let mut s = String::new();
        write_value(&mut s, &Value::Float(2.0)).unwrap();
        assert_eq!(s, "2.0");
    }
}
