//! Offline stand-in for `rand_core`: just the fallible generator trait the
//! workspace's `SimRng` implements.

#![forbid(unsafe_code)]

/// A fallible random number generator.
pub trait TryRng {
    /// Error produced on generation failure ([`std::convert::Infallible`]
    /// for deterministic software generators).
    type Error;

    /// Next 32 random bits.
    fn try_next_u32(&mut self) -> Result<u32, Self::Error>;

    /// Next 64 random bits.
    fn try_next_u64(&mut self) -> Result<u64, Self::Error>;

    /// Fills `dst` with random bytes.
    fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Self::Error>;
}
