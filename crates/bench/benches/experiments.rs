//! Criterion benches: one per paper figure/table plus engine microbenches.
//!
//! The figure benches measure the cost of regenerating each experiment's
//! data (trace synthesis, scheme simulation, analytics) on reduced run
//! sizes; their outputs are the same series the `figures` binary prints.
//! Engine microbenches track the hot paths: event throughput, BH2
//! decisions, the ILP solver, DMT bit-loading, and the FEXT bundle sync.

use criterion::{criterion_group, criterion_main, Criterion};
use insomnia_access::{p_card_sleeps, p_card_sleeps_monte_carlo};
use insomnia_bench::figures;
use insomnia_bench::Harness;
use insomnia_core::{
    build_world, run_single, run_testbed, ScenarioConfig, SchemeSpec, SolverInput, TestbedConfig,
};
use insomnia_dslphy::{
    fixed_length_lines, BundleConfig, BundleSim, CrosstalkExperiment, ServiceProfile,
};
use insomnia_simcore::{Scheduler, SimRng, SimTime};
use insomnia_traffic::adsl::{self, AdslConfig};
use insomnia_traffic::crawdad::{self, CrawdadConfig};
use std::hint::black_box;

/// A scenario small enough for per-iteration benching: quarter building,
/// 3-hour day, one repetition.
fn small_scenario() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::smoke();
    cfg.trace.horizon = SimTime::from_hours(3);
    cfg.repetitions = 1;
    cfg
}

fn bench_engine(c: &mut Criterion) {
    c.bench_function("engine/event_throughput_100k", |b| {
        b.iter(|| {
            let mut s: Scheduler<u64> = Scheduler::new();
            for i in 0..100_000u64 {
                s.schedule_at(SimTime::from_millis(i % 10_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = s.next_event() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });

    c.bench_function("engine/rng_throughput_1m", |b| {
        let mut rng = SimRng::new(1);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1_000_000 {
                acc += rng.f64();
            }
            black_box(acc)
        })
    });
}

fn bench_fig02_adsl(c: &mut Criterion) {
    c.bench_function("fig02/adsl_population_1k", |b| {
        b.iter(|| {
            let mut rng = SimRng::new(7);
            let pop =
                adsl::generate(&AdslConfig { n_users: 1_000, ..Default::default() }, &mut rng);
            black_box(pop.average_percent(insomnia_traffic::Direction::Down))
        })
    });
}

fn bench_fig03_fig04_trace(c: &mut Criterion) {
    c.bench_function("fig03/crawdad_day_generation", |b| {
        b.iter(|| {
            let mut rng = SimRng::new(3);
            black_box(crawdad::generate(&CrawdadConfig::default(), &mut rng))
        })
    });

    let mut rng = SimRng::new(3);
    let trace = crawdad::generate(&CrawdadConfig::default(), &mut rng);
    c.bench_function("fig04/gap_histogram_peak_hour", |b| {
        b.iter(|| {
            black_box(insomnia_traffic::stats::gap_histogram_paper_bins(
                &trace,
                SimTime::from_hours(16),
                SimTime::from_hours(17),
            ))
        })
    });
}

fn bench_fig05_sleep_probability(c: &mut Criterion) {
    c.bench_function("fig05/analytic_curves", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for l in 1..=8 {
                for k in [2u32, 4, 8] {
                    if l <= k {
                        acc += p_card_sleeps(l, k, 24, 0.5) + p_card_sleeps(l, k, 24, 0.25);
                    }
                }
            }
            black_box(acc)
        })
    });
    c.bench_function("fig05/monte_carlo_10k", |b| {
        let mut rng = SimRng::new(5);
        b.iter(|| black_box(p_card_sleeps_monte_carlo(2, 8, 24, 0.5, 10_000, &mut rng)))
    });
}

fn bench_fig06_to_08_schemes(c: &mut Criterion) {
    let cfg = small_scenario();
    let (trace, topo) = build_world(&cfg);
    let mut group = c.benchmark_group("fig06-08/scheme_day");
    group.sample_size(10);
    for spec in [
        SchemeSpec::no_sleep(),
        SchemeSpec::soi(),
        SchemeSpec::soi_k_switch(),
        SchemeSpec::bh2_k_switch(),
        SchemeSpec::optimal(),
    ] {
        group.bench_function(spec.to_string(), |b| {
            b.iter(|| black_box(run_single(&cfg, spec, &trace, &topo, SimRng::new(1))))
        });
    }
    group.finish();
}

fn bench_fig09_qos(c: &mut Criterion) {
    let cfg = small_scenario();
    let (trace, topo) = build_world(&cfg);
    let base = insomnia_core::run_scheme_on(&cfg, SchemeSpec::no_sleep(), &trace, &topo);
    let soi = insomnia_core::run_scheme_on(&cfg, SchemeSpec::soi(), &trace, &topo);
    c.bench_function("fig09/completion_variation_cdf", |b| {
        b.iter(|| black_box(insomnia_core::completion_variation_cdf(&soi, &base)))
    });
}

fn bench_fig10_density(c: &mut Criterion) {
    let mut cfg = small_scenario();
    cfg.trace.horizon = SimTime::from_hours(2);
    let mut group = c.benchmark_group("fig10/density_point");
    group.sample_size(10);
    group.bench_function("bh2_density_4", |b| {
        b.iter(|| black_box(insomnia_core::density_sweep(&cfg, &[4.0])))
    });
    group.finish();
}

fn bench_fig12_testbed(c: &mut Criterion) {
    let mut scenario = ScenarioConfig::default();
    scenario.repetitions = 1;
    let tb = TestbedConfig { runs: 1, ..TestbedConfig::default() };
    let mut group = c.benchmark_group("fig12/testbed");
    group.sample_size(10);
    group.bench_function("replay_30min", |b| b.iter(|| black_box(run_testbed(&scenario, &tb))));
    group.finish();
}

fn bench_fig14_crosstalk(c: &mut Criterion) {
    let sim = BundleSim::new(
        BundleConfig { sync_jitter_db: 0.0, ..Default::default() },
        ServiceProfile::mbps62(),
        fixed_length_lines(600.0),
    );
    let active = vec![true; 24];
    c.bench_function("fig14/single_line_sync", |b| {
        b.iter(|| black_box(sim.sync_rate_bps(0, &active, None)))
    });
    let mut group = c.benchmark_group("fig14/experiment");
    group.sample_size(10);
    group.bench_function("one_order_one_config", |b| {
        let exp = CrosstalkExperiment {
            profile: ServiceProfile::mbps62(),
            setup: insomnia_dslphy::LengthSetup::Fixed600,
            n_orders: 1,
            repeats: 1,
            loss_spread_db: 2.0,
        };
        b.iter(|| {
            let mut rng = SimRng::new(14);
            black_box(exp.run(&BundleConfig::default(), &mut rng))
        })
    });
    group.finish();
}

fn bench_fig15_attenuation(c: &mut Criterion) {
    c.bench_function("fig15/attenuation_sampling", |b| {
        b.iter(|| {
            let mut rng = SimRng::new(15);
            black_box(insomnia_dslphy::sample_attenuations(
                &insomnia_dslphy::AttenuationConfig::default(),
                &mut rng,
            ))
        })
    });
}

fn bench_solver(c: &mut Criterion) {
    // A peak-load-like instance: 100 active users, 40 gateways.
    let mut rng = SimRng::new(99);
    let n_gw = 40;
    let mut reach = Vec::new();
    let mut demands = Vec::new();
    for _ in 0..100 {
        let home = rng.below_usize(n_gw);
        let mut gs = vec![(home, 12.0e6)];
        for g in 0..n_gw {
            if g != home && rng.chance(4.6 / 39.0) {
                gs.push((g, 6.0e6));
            }
        }
        reach.push(gs);
        demands.push(rng.range_f64(10e3, 400e3));
    }
    let input = SolverInput::new(demands, reach, n_gw, vec![3.0e6; n_gw], 0).unwrap();
    c.bench_function("optimal/solver_peak_instance", |b| {
        b.iter(|| black_box(insomnia_core::solve(&input)))
    });
}

fn bench_summary_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("fig5_figure_data", |b| b.iter(|| black_box(figures::fig5())));
    let h = Harness::quick();
    group.bench_function("fig3_figure_data", |b| b.iter(|| black_box(figures::fig3(&h))));
    group.finish();
}

criterion_group!(
    benches,
    bench_engine,
    bench_fig02_adsl,
    bench_fig03_fig04_trace,
    bench_fig05_sleep_probability,
    bench_fig06_to_08_schemes,
    bench_fig09_qos,
    bench_fig10_density,
    bench_fig12_testbed,
    bench_fig14_crosstalk,
    bench_fig15_attenuation,
    bench_solver,
    bench_summary_tables
);
criterion_main!(benches);
