//! Eager-vs-streaming benchmark: trace generation throughput (flows/s) and
//! driver event throughput (events/s) on one reduced dense-metro shard.
//!
//! Run with `cargo bench -p insomnia-bench --bench streaming`. Besides the
//! usual stderr table, the bench writes `BENCH_streaming.json` at the
//! workspace root — a flat, diffable snapshot meant to be committed so the
//! eager/streaming perf trajectory is tracked across PRs. The streaming
//! generator pays the setup pass twice (it must advance the master RNG
//! through every draw, then replay per client), so its raw flows/s is the
//! price of O(clients) memory; the driver rows show what that buys: the
//! same event throughput with an O(active) heap and no materialized trace.

use insomnia_core::{
    build_world_shard, build_world_shard_streaming, run_single, run_single_streaming,
    ScenarioConfig, SchemeSpec,
};
use insomnia_simcore::{SimRng, SimTime};
use insomnia_traffic::crawdad::{generate_eager, CrawdadConfig};
use insomnia_traffic::FlowStream;
use std::hint::black_box;
use std::time::Instant;

/// One dense-metro neighborhood (1600 clients / 200 gateways), 6-hour
/// horizon so a full bench run stays in seconds.
fn shard_scenario() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::default();
    cfg.trace.n_clients = 1_600;
    cfg.trace.n_aps = 200;
    cfg.trace.horizon = SimTime::from_hours(6);
    cfg.dslam.n_cards = 20;
    cfg.dslam.ports_per_card = 10;
    cfg.k_switch = 4;
    cfg.mean_networks_in_range = 7.0;
    cfg.trace.rate_scale = 1.2;
    cfg.trace.always_on_frac = 0.12;
    cfg.sample_period = insomnia_simcore::SimDuration::from_secs(60);
    cfg.repetitions = 1;
    cfg.validate().expect("bench scenario validates");
    cfg
}

struct Row {
    name: &'static str,
    unit: &'static str,
    /// Work units per iteration (flows generated / events delivered).
    work: f64,
    mean_s: f64,
}

impl Row {
    fn per_s(&self) -> f64 {
        self.work / self.mean_s
    }
}

/// Times `f` over `iters` iterations (after one warm-up) and returns the
/// mean seconds plus the per-iteration work units `f` reports.
fn time<F: FnMut() -> f64>(iters: u32, mut f: F) -> (f64, f64) {
    let work = f(); // warm-up, also fixes the work count
    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    (t0.elapsed().as_secs_f64() / f64::from(iters), work)
}

fn main() {
    let cfg = shard_scenario();
    let trace_cfg: CrawdadConfig = cfg.trace.clone();
    let iters = 5;
    let mut rows = Vec::new();

    // Trace generation throughput: materialize-and-sort vs stream-drain.
    let (mean_s, flows) = time(iters, || {
        let mut rng = SimRng::new(42);
        generate_eager(&trace_cfg, &mut rng).flows.len() as f64
    });
    rows.push(Row { name: "trace/eager_generate", unit: "flows/s", work: flows, mean_s });

    let (mean_s, flows) = time(iters, || {
        let mut rng = SimRng::new(42);
        let stream = FlowStream::new(&trace_cfg, &mut rng);
        let total = stream.total_flows() as f64;
        black_box(stream.count());
        total
    });
    rows.push(Row { name: "trace/flow_stream_drain", unit: "flows/s", work: flows, mean_s });

    // Driver event throughput: prebuilt trace vs per-run streamed world.
    let (trace, topo) = build_world_shard(&cfg, cfg.seed, 0);
    let (mean_s, events) = time(iters, || {
        run_single(&cfg, SchemeSpec::soi(), &trace, &topo, SimRng::new(1)).events as f64
    });
    rows.push(Row { name: "driver/soi_eager_trace", unit: "events/s", work: events, mean_s });

    let (mean_s, events) = time(iters, || {
        let (stream, stopo) = build_world_shard_streaming(&cfg, cfg.seed, 0);
        run_single_streaming(&cfg, SchemeSpec::soi(), stream, &stopo, SimRng::new(1)).events as f64
    });
    rows.push(Row { name: "driver/soi_streamed_world", unit: "events/s", work: events, mean_s });

    let mut json = String::from("{\n  \"bench\": \"streaming\",\n  \"scenario\": {");
    json.push_str(&format!(
        "\"n_clients\": {}, \"n_gateways\": {}, \"horizon_hours\": {}, \"scheme\": \"soi\"}},\n",
        cfg.trace.n_clients,
        cfg.trace.n_aps,
        cfg.trace.horizon.as_secs_f64() / 3_600.0,
    ));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        println!(
            "bench streaming/{:<28} {:>10.1} ms/iter  {:>12.0} {}",
            r.name,
            r.mean_s * 1e3,
            r.per_s(),
            r.unit
        );
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"work_per_iter\": {:.0}, \"mean_ms\": {:.3}, \
             \"throughput\": {:.0}, \"unit\": \"{}\"}}{}\n",
            r.name,
            r.work,
            r.mean_s * 1e3,
            r.per_s(),
            r.unit,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_streaming.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
