//! Eager-vs-streaming benchmark: trace generation throughput (flows/s),
//! driver event throughput (events/s), and the two hot-path microbenches
//! behind them — queue backend (binary heap vs calendar) and k-way merge
//! (binary heap vs loser tree) — on one reduced dense-metro shard.
//!
//! Run with `cargo bench -p insomnia-bench --bench streaming`. Besides the
//! usual stderr table, the bench appends a snapshot to
//! `BENCH_streaming.json` at the workspace root — prior snapshots are
//! retained, so the file is a committed perf trajectory, not a single
//! point. Setup cost and drain cost are split into separate rows: the
//! setup pass (one full RNG advance, O(clients) state) is paid once per
//! shard and amortizes over repetitions, while the drain rows measure what
//! every run pays per flow — which is the fair comparison against the
//! eager rows, whose own setup (the materialized, sorted flow vector) is
//! likewise prebuilt outside the timed loop.

use insomnia_core::{
    build_world_shard, build_world_shard_streaming, run_single, run_single_streaming,
    ScenarioConfig, SchemeSpec,
};
use insomnia_simcore::{EventQueue, SimRng, SimTime, SplitMix64};
use insomnia_traffic::crawdad::{generate_eager, CrawdadConfig};
use insomnia_traffic::merge::{LoserTree, PackedHeap, EXHAUSTED, HEAP_MIN_LANES};
use insomnia_traffic::FlowStream;
use std::collections::BinaryHeap;
use std::hint::black_box;
use std::time::Instant;

/// One dense-metro neighborhood (1600 clients / 200 gateways), 6-hour
/// horizon so a full bench run stays in seconds.
fn shard_scenario() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::default();
    cfg.trace.n_clients = 1_600;
    cfg.trace.n_aps = 200;
    cfg.trace.horizon = SimTime::from_hours(6);
    cfg.dslam.n_cards = 20;
    cfg.dslam.ports_per_card = 10;
    cfg.k_switch = 4;
    cfg.mean_networks_in_range = 7.0;
    cfg.trace.rate_scale = 1.2;
    cfg.trace.always_on_frac = 0.12;
    cfg.sample_period = insomnia_simcore::SimDuration::from_secs(60);
    cfg.repetitions = 1;
    cfg.validate().expect("bench scenario validates");
    cfg
}

struct Row {
    name: String,
    unit: &'static str,
    /// Work units per iteration (flows generated / events delivered / ops).
    work: f64,
    mean_s: f64,
}

impl Row {
    fn per_s(&self) -> f64 {
        self.work / self.mean_s
    }
}

/// Times competing closures by alternating *windows* of back-to-back
/// iterations and returns each closure's `(minimum seconds, work units)`.
///
/// Two deliberate choices, both for a single-vCPU VM whose host steals
/// double-digit percentages of some wall-clock stretches:
///
/// * The **minimum**, not the mean — steal time is strictly additive, so
///   the fastest iteration is the closest observation of the code's own
///   cost.
/// * **Alternating windows**, not one block per closure — a contention
///   episode spanning one closure's entire block would tax only that side
///   of a ratio this file exists to record. Within a window, iterations
///   stay back-to-back so each closure keeps the cache warmth it would
///   have in production (where repetitions re-run the same path).
fn time_alternating(
    rounds: u32,
    per_window: u32,
    fs: &mut [&mut dyn FnMut() -> f64],
) -> Vec<(f64, f64)> {
    let works: Vec<f64> = fs.iter_mut().map(|f| f()).collect(); // warm-up + work counts
    let mut mins = vec![f64::INFINITY; fs.len()];
    for _ in 0..rounds {
        for (i, f) in fs.iter_mut().enumerate() {
            for _ in 0..per_window {
                let t0 = Instant::now();
                black_box(f());
                mins[i] = mins[i].min(t0.elapsed().as_secs_f64());
            }
        }
    }
    mins.into_iter().zip(works).collect()
}

/// Queue-backend microbench: the classic DES *hold model* — seed `live`
/// pending events, then `holds` cycles of pop-min + push a successor at a
/// pseudorandom offset — on a prebuilt [`EventQueue`]. This isolates pure
/// queue churn from everything else the driver does.
fn queue_hold(mut q: EventQueue<u32>, live: u64, holds: u64) -> f64 {
    let mut mix = SplitMix64::new(0x5eed);
    let mut t = 0u64;
    for i in 0..live {
        q.push(SimTime::from_millis(t), i as u32);
        t += mix.next_u64() % 512;
    }
    for _ in 0..holds {
        let (at, ev) = q.pop().expect("hold model keeps the queue non-empty");
        q.push(at + insomnia_simcore::SimDuration::from_millis(1 + mix.next_u64() % 4096), ev);
    }
    black_box(q.len()) as f64
}

/// Sorted per-lane timestamp runs for the merge microbench: `k` lanes of
/// `per_lane` entries each, deterministic, with plenty of cross-lane ties.
fn merge_lanes(k: usize, per_lane: usize) -> Vec<Vec<SimTime>> {
    let mut mix = SplitMix64::new(0xfeed);
    (0..k)
        .map(|_| {
            let mut t = mix.next_u64() % 1_000;
            (0..per_lane)
                .map(|_| {
                    t += mix.next_u64() % 2_000;
                    SimTime::from_millis(t)
                })
                .collect()
        })
        .collect()
}

/// Bursty variant: each lane emits tight ~32-entry runs separated by long
/// jumps, so one lane keeps winning for stretches — the regime the loser
/// tree's cached winner threshold was built for.
fn merge_lanes_bursty(k: usize, per_lane: usize) -> Vec<Vec<SimTime>> {
    let mut mix = SplitMix64::new(0xb417);
    (0..k)
        .map(|_| {
            let mut t = mix.next_u64() % 1_000;
            (0..per_lane)
                .map(|i| {
                    t += if i % 32 == 0 { 50_000 + mix.next_u64() % 200_000 } else { 2 };
                    SimTime::from_millis(t)
                })
                .collect()
        })
        .collect()
}

/// K-way merge via the pre-loser-tree shape: a `BinaryHeap` of
/// `(Reverse(key), Reverse(lane))` entries paying one pop *and* one push
/// per merged element.
fn merge_heap(lanes: &[Vec<SimTime>]) -> f64 {
    use std::cmp::Reverse;
    let mut pos = vec![0usize; lanes.len()];
    let mut heap: BinaryHeap<(Reverse<SimTime>, Reverse<usize>)> =
        lanes.iter().enumerate().map(|(i, l)| (Reverse(l[0]), Reverse(i))).collect();
    let mut merged = 0u64;
    let mut last = SimTime::ZERO;
    while let Some((Reverse(key), Reverse(lane))) = heap.pop() {
        debug_assert!(key >= last);
        last = key;
        merged += 1;
        pos[lane] += 1;
        if let Some(&next) = lanes[lane].get(pos[lane]) {
            heap.push((Reverse(next), Reverse(lane)));
        }
    }
    merged as f64
}

/// The same merge through [`LoserTree`]: one leaf-to-root replay per
/// merged element.
fn merge_loser_tree(lanes: &[Vec<SimTime>]) -> f64 {
    let mut pos = vec![0usize; lanes.len()];
    let keys: Vec<SimTime> = lanes.iter().map(|l| l[0]).collect();
    let mut tree = LoserTree::new(&keys);
    let mut merged = 0u64;
    let mut last = SimTime::ZERO;
    while tree.winner_key() != EXHAUSTED {
        let w = tree.winner();
        debug_assert!(tree.winner_key() >= last);
        last = tree.winner_key();
        merged += 1;
        pos[w] += 1;
        tree.update(w, lanes[w].get(pos[w]).copied().unwrap_or(EXHAUSTED));
    }
    merged as f64
}

/// The same merge through [`PackedHeap`] — the wide-merge backend
/// [`insomnia_traffic::merge::TournamentMerge`] picks past
/// [`HEAP_MIN_LANES`] lanes: same packed `u64` entries as the tree, one
/// pop + push per merged element.
fn merge_packed_heap(lanes: &[Vec<SimTime>]) -> f64 {
    let mut pos = vec![0usize; lanes.len()];
    let keys: Vec<SimTime> = lanes.iter().map(|l| l[0]).collect();
    let mut heap = PackedHeap::new(&keys);
    let mut merged = 0u64;
    let mut last = SimTime::ZERO;
    while heap.winner_key() != EXHAUSTED {
        let w = heap.winner();
        debug_assert!(heap.winner_key() >= last);
        last = heap.winner_key();
        merged += 1;
        pos[w] += 1;
        heap.update(w, lanes[w].get(pos[w]).copied().unwrap_or(EXHAUSTED));
    }
    merged as f64
}

/// The committed snapshot-history schema of `BENCH_streaming.json`.
#[derive(serde::Serialize, serde::Deserialize)]
struct BenchDoc {
    bench: String,
    scenario: BenchScenario,
    snapshots: Vec<BenchSnapshot>,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct BenchScenario {
    n_clients: usize,
    n_gateways: usize,
    horizon_hours: f64,
    scheme: String,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct BenchSnapshot {
    label: String,
    results: Vec<BenchRow>,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct BenchRow {
    name: String,
    work_per_iter: f64,
    mean_ms: f64,
    throughput: f64,
    unit: String,
}

/// The pre-history schema (one anonymous snapshot), kept readable so the
/// first history-appending run preserves the committed baseline.
#[derive(serde::Deserialize)]
#[allow(dead_code)]
struct LegacyBenchDoc {
    bench: String,
    scenario: BenchScenario,
    results: Vec<BenchRow>,
}

/// Appends this run's rows to `BENCH_streaming.json`, retaining every
/// prior snapshot (a legacy single-snapshot file becomes `snapshots[0]`).
fn write_snapshot(
    path: &str,
    cfg: &ScenarioConfig,
    label: &str,
    rows: &[Row],
) -> std::io::Result<()> {
    let mut snapshots: Vec<BenchSnapshot> = match std::fs::read_to_string(path) {
        Ok(text) => {
            if let Ok(doc) = serde_json::from_str::<BenchDoc>(&text) {
                doc.snapshots
            } else if let Ok(legacy) = serde_json::from_str::<LegacyBenchDoc>(&text) {
                vec![BenchSnapshot {
                    label: "pre-batching baseline".into(),
                    results: legacy.results,
                }]
            } else {
                Vec::new()
            }
        }
        Err(_) => Vec::new(),
    };
    snapshots.push(BenchSnapshot {
        label: label.into(),
        results: rows
            .iter()
            .map(|r| BenchRow {
                name: r.name.clone(),
                work_per_iter: r.work.round(),
                mean_ms: (r.mean_s * 1e6).round() / 1e3,
                throughput: r.per_s().round(),
                unit: r.unit.into(),
            })
            .collect(),
    });
    let doc = BenchDoc {
        bench: "streaming".into(),
        scenario: BenchScenario {
            n_clients: cfg.trace.n_clients,
            n_gateways: cfg.trace.n_aps,
            horizon_hours: cfg.trace.horizon.as_secs_f64() / 3_600.0,
            scheme: "soi".into(),
        },
        snapshots,
    };
    let json = serde_json::to_string(&doc).expect("bench snapshot serializes");
    std::fs::write(path, json + "\n")
}

fn main() {
    // Optional substring filter (`-- driver` runs just the driver rows) for
    // quick A/B iterations; filtered runs print but do not append to the
    // committed snapshot history. Flags (cargo passes `--bench` through)
    // are not filters.
    let filter: Option<String> = std::env::args().skip(1).find(|a| !a.starts_with('-'));
    let wanted = |group: &str| filter.as_deref().is_none_or(|f| group.contains(f));
    let cfg = shard_scenario();
    let trace_cfg: CrawdadConfig = cfg.trace.clone();
    let mut rows = Vec::new();

    // Trace generation throughput. Eager materializes and sorts; the
    // stream splits into a one-time setup pass (snapshot + count, paid per
    // shard) and the per-run drain, measured on a prebuilt stream via
    // `Clone` — the same way each repetition of a run re-drains it.
    if wanted("trace") {
        let mut rng = SimRng::new(42);
        let prebuilt = FlowStream::new(&trace_cfg, &mut rng);
        let timed = time_alternating(
            3,
            3,
            &mut [
                &mut || {
                    let mut rng = SimRng::new(42);
                    generate_eager(&trace_cfg, &mut rng).flows.len() as f64
                },
                &mut || {
                    let mut rng = SimRng::new(42);
                    FlowStream::new(&trace_cfg, &mut rng).total_flows() as f64
                },
                &mut || {
                    let stream = prebuilt.clone();
                    let total = stream.total_flows() as f64;
                    black_box(stream.count());
                    total
                },
            ],
        );
        for (name, (mean_s, flows)) in
            ["trace/eager_generate", "trace/stream_setup", "trace/flow_stream_drain"]
                .into_iter()
                .zip(timed)
        {
            rows.push(Row { name: name.into(), unit: "flows/s", work: flows, mean_s });
        }
    }

    // Driver event throughput: prebuilt trace vs prebuilt streamed world,
    // the stream cloned per run exactly like a repetition re-run — which
    // is what `run_scheme_shards` does for multi-repetition lazy worlds:
    // one prototype per shard, replay cache enabled, cloned per
    // repetition. The warm-up drain records; timed drains replay it, so
    // this row measures what repetitions 2..n actually pay (repetition 1's
    // regeneration cost is the `trace/flow_stream_drain` row).
    if wanted("driver") {
        let (trace, topo) = build_world_shard(&cfg, cfg.seed, 0);
        let (mut stream, stopo) = build_world_shard_streaming(&cfg, cfg.seed, 0);
        assert!(stream.enable_replay_cache(), "bench shard fits the replay gate");
        let timed = time_alternating(
            3,
            5,
            &mut [
                &mut || {
                    run_single(&cfg, SchemeSpec::soi(), &trace, &topo, SimRng::new(1)).events as f64
                },
                &mut || {
                    run_single_streaming(
                        &cfg,
                        SchemeSpec::soi(),
                        stream.clone(),
                        &stopo,
                        SimRng::new(1),
                    )
                    .events as f64
                },
            ],
        );
        for (name, (mean_s, events)) in
            ["driver/soi_eager_trace", "driver/soi_streamed_world"].into_iter().zip(timed)
        {
            rows.push(Row { name: name.into(), unit: "events/s", work: events, mean_s });
        }
    }

    // Queue-backend microbench: identical hold-model churn on both
    // backends, sized at calendar scale (the driver picks the calendar
    // only past ~65k expected peak occupancy).
    if wanted("queue") {
        let (live, holds) = (100_000u64, 500_000u64);
        let timed = time_alternating(
            3,
            2,
            &mut [&mut || queue_hold(EventQueue::new(), live, holds), &mut || {
                queue_hold(EventQueue::new_calendar(), live, holds)
            }],
        );
        for (name, (mean_s, _)) in ["queue/binary_heap", "queue/calendar"].into_iter().zip(timed) {
            rows.push(Row { name: name.into(), unit: "holds/s", work: holds as f64, mean_s });
        }
    }

    // Merge microbench: the stream's historical 16-byte-entry heap merge,
    // its loser tree, and the packed-entry heap backend, over identical
    // sorted lanes (1600 lanes — one per dense-metro client).
    if wanted("merge") {
        let lanes = merge_lanes(1_600, 400);
        let timed = time_alternating(
            3,
            2,
            &mut [&mut || merge_heap(&lanes), &mut || merge_loser_tree(&lanes), &mut || {
                merge_packed_heap(&lanes)
            }],
        );
        for (name, (mean_s, merged)) in
            ["merge/binary_heap", "merge/loser_tree", "merge/packed_heap"].into_iter().zip(timed)
        {
            rows.push(Row { name: name.into(), unit: "pops/s", work: merged, mean_s });
        }
        // Crossover sweep: identical total pops at several lane counts,
        // interleaved and bursty lane shapes, to locate where the packed
        // heap overtakes the tree — the measured basis of HEAP_MIN_LANES
        // (asserted to sit inside the sweep).
        const { assert!(HEAP_MIN_LANES >= 16 && HEAP_MIN_LANES <= 1_024) };
        for k in [16usize, 64, 256, 1_024] {
            let mixed = merge_lanes(k, 640_000 / k);
            let bursty = merge_lanes_bursty(k, 640_000 / k);
            let timed = time_alternating(
                3,
                2,
                &mut [
                    &mut || merge_loser_tree(&mixed),
                    &mut || merge_packed_heap(&mixed),
                    &mut || merge_loser_tree(&bursty),
                    &mut || merge_packed_heap(&bursty),
                ],
            );
            for (name, (mean_s, merged)) in [
                format!("merge/loser_tree_k{k}"),
                format!("merge/packed_heap_k{k}"),
                format!("merge/loser_tree_bursty_k{k}"),
                format!("merge/packed_heap_bursty_k{k}"),
            ]
            .into_iter()
            .zip(timed)
            {
                rows.push(Row { name, unit: "pops/s", work: merged, mean_s });
            }
        }
    }

    for r in &rows {
        println!(
            "bench streaming/{:<28} {:>10.3} ms/iter  {:>12.0} {}",
            r.name,
            r.mean_s * 1e3,
            r.per_s(),
            r.unit
        );
    }

    if filter.is_some() {
        return; // partial runs never append a partial snapshot
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_streaming.json");
    match write_snapshot(
        path,
        &cfg,
        "shard-major proto cache + merge backend by k + cached gap thresholds",
        &rows,
    ) {
        Ok(()) => println!("appended snapshot to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
