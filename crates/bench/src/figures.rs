//! Builders for every figure and table in the paper's evaluation.
//!
//! Each function produces a [`FigureData`] (named columns + numeric rows)
//! that the `figures` binary prints as an aligned table or CSV. The mapping
//! figure → module is catalogued in DESIGN.md; measured-vs-paper values are
//! recorded in EXPERIMENTS.md.

use insomnia_access::{p_card_sleeps, PowerModel};
use insomnia_core::{
    build_sharded_world, build_world, completion_variation_cdf, density_sweep, hourly_means,
    isp_share_percent_series, online_time_variation_cdf, run_scheme_sharded, run_testbed,
    savings_percent_series, summarize, FigureData, ScenarioConfig, SchemeResult, SchemeSpec,
    TestbedConfig, WorldModel,
};
use insomnia_dslphy::{sample_attenuations, AttenuationConfig, BundleConfig, CrosstalkExperiment};
use insomnia_simcore::{Cdf, SimRng, SimTime};
use insomnia_traffic::adsl::{self, AdslConfig, Direction};
use insomnia_traffic::stats::{ap_utilization_percent_series, gap_histogram_paper_bins};

/// Scenario + run-size knobs for the harness.
///
/// Scenarios come from the `insomnia-scenarios` registry rather than
/// bespoke config code, so the figure harness runs the exact same
/// `paper-default` the CLI batch runner exposes — and any registry preset
/// via [`Harness::from_preset`].
#[derive(Debug, Clone)]
pub struct Harness {
    /// The evaluation scenario.
    pub scenario: ScenarioConfig,
}

impl Harness {
    /// The paper's full configuration (the `paper-default` registry
    /// preset, 10 repetitions).
    pub fn paper() -> Self {
        Harness::from_preset("paper-default").expect("builtin preset resolves")
    }

    /// Reduced repetitions for quick regeneration (~10× faster, same
    /// shapes).
    pub fn quick() -> Self {
        let mut h = Harness::paper();
        h.scenario.repetitions = 2;
        h
    }

    /// A harness over any scenario registry preset.
    pub fn from_preset(name: &str) -> insomnia_simcore::SimResult<Self> {
        let scenario = insomnia_scenarios::Registry::builtin().resolve(name)?;
        Ok(Harness { scenario })
    }
}

/// The scheme runs shared by Figs. 6–9 and the card-count table.
pub struct MainRuns {
    /// No-sleep baseline.
    pub no_sleep: SchemeResult,
    /// Plain SoI.
    pub soi: SchemeResult,
    /// SoI + k-switch.
    pub soi_k: SchemeResult,
    /// SoI + full switch.
    pub soi_full: SchemeResult,
    /// BH2 (1 backup) + k-switch.
    pub bh2_k: SchemeResult,
    /// BH2 (no backup) + k-switch.
    pub bh2_nb_k: SchemeResult,
    /// BH2 (1 backup) + full switch.
    pub bh2_full: SchemeResult,
    /// Optimal (ILP + full switch).
    pub optimal: SchemeResult,
    /// Baseline user/ISP draws, watts.
    pub base_user_w: f64,
    /// Baseline ISP draw, watts.
    pub base_isp_w: f64,
}

/// Runs every scheme of the main scenario once (the expensive step; reuse
/// the result for all dependent figures).
///
/// The world is built through the sharded path, so a registry preset with
/// a `shards` axis (e.g. `dense-metro`) drives the exact same figure
/// pipeline as the paper's single-DSLAM scenario — per-shard results are
/// merged before any series math happens.
pub fn run_main(h: &Harness) -> MainRuns {
    let cfg = &h.scenario;
    let world = build_sharded_world(cfg);
    let threads = insomnia_simcore::default_threads();
    let run = |spec| run_scheme_sharded(cfg, spec, &world, cfg.seed, threads);
    MainRuns {
        no_sleep: run(SchemeSpec::no_sleep()),
        soi: run(SchemeSpec::soi()),
        soi_k: run(SchemeSpec::soi_k_switch()),
        soi_full: run(SchemeSpec::soi_full_switch()),
        bh2_k: run(SchemeSpec::bh2_k_switch()),
        bh2_nb_k: run(SchemeSpec::bh2_no_backup_k_switch()),
        bh2_full: run(SchemeSpec::bh2_full_switch()),
        optimal: run(SchemeSpec::optimal()),
        base_user_w: cfg.power.no_sleep_user_w(world.n_gateways()),
        base_isp_w: cfg.power.no_sleep_isp_w_sharded(
            world.n_gateways(),
            cfg.dslam.n_cards,
            world.n_shards(),
        ),
    }
}

/// Fig. 2: daily average and median utilization of the ADSL population.
pub fn fig2(seed: u64) -> FigureData {
    let mut rng = SimRng::new(seed).fork("fig2");
    let pop = adsl::generate(&AdslConfig::default(), &mut rng);
    let mut t = FigureData::new(
        "fig2",
        "daily avg/median ADSL utilization, 10K subscribers [%]",
        vec![
            "hour".into(),
            "avg_down".into(),
            "avg_up".into(),
            "median_down".into(),
            "median_up".into(),
        ],
    );
    let ad = pop.average_percent(Direction::Down);
    let au = pop.average_percent(Direction::Up);
    let md = pop.median_percent(Direction::Down);
    let mu = pop.median_percent(Direction::Up);
    for hour in 0..24 {
        t.push_row(vec![hour as f64, ad[hour], au[hour], md[hour], mu[hour]]);
    }
    t
}

/// Fig. 3: average downlink utilization of the 40 APs at 6 Mbps backhaul.
pub fn fig3(h: &Harness) -> FigureData {
    let (trace, _) = build_world(&h.scenario);
    let series = ap_utilization_percent_series(&trace, h.scenario.backhaul_bps, 3_600_000);
    let mut t = FigureData::new(
        "fig3",
        "average AP downlink utilization at 6 Mbps [%]",
        vec!["hour".into(), "utilization_pct".into()],
    );
    for (hour, m) in series.bin_means_or_zero().iter().enumerate() {
        t.push_row(vec![hour as f64, *m]);
    }
    t
}

/// Fig. 4: fraction of peak-hour idle time per inter-packet-gap bin.
pub fn fig4(h: &Harness) -> FigureData {
    let (trace, _) = build_world(&h.scenario);
    let hist = gap_histogram_paper_bins(&trace, SimTime::from_hours(16), SimTime::from_hours(17));
    let mut labels = hist.labels();
    let mut fractions = hist.fractions();
    fractions.push(hist.overflow_fraction());
    let mut t = FigureData::new(
        "fig4",
        "share of peak-hour idle time per gap bin [fraction]",
        vec!["idle_time_fraction".into()],
    );
    for f in &fractions {
        t.push_row(vec![*f]);
    }
    labels.truncate(fractions.len());
    t.with_row_labels(labels)
}

/// Fig. 5: P{l-th line card sleeps} for k ∈ {2,4,8}, m = 24 ports.
pub fn fig5() -> FigureData {
    let mut t = FigureData::new(
        "fig5",
        "P{l-th card sleeps}, m=24 modems/card (analytic, corrected Eq. 2)",
        vec![
            "card_l".into(),
            "k2_p50".into(),
            "k4_p50".into(),
            "k8_p50".into(),
            "k2_p25".into(),
            "k4_p25".into(),
            "k8_p25".into(),
        ],
    );
    for l in 1..=8u32 {
        let row = |k: u32, p: f64| if l <= k { p_card_sleeps(l, k, 24, p) } else { 0.0 };
        t.push_row(vec![
            f64::from(l),
            row(2, 0.5),
            row(4, 0.5),
            row(8, 0.5),
            row(2, 0.25),
            row(4, 0.25),
            row(8, 0.25),
        ]);
    }
    t
}

/// Fig. 6: hourly energy savings vs no-sleep for the four plotted schemes.
pub fn fig6(h: &Harness, runs: &MainRuns) -> FigureData {
    let base = runs.base_user_w + runs.base_isp_w;
    let mut t = FigureData::new(
        "fig6",
        "energy savings vs no-sleep [%], hourly means",
        vec![
            "hour".into(),
            "optimal".into(),
            "soi".into(),
            "soi_kswitch".into(),
            "bh2_kswitch".into(),
        ],
    );
    let dt = h.scenario.sample_period.as_secs_f64();
    let series =
        |r: &SchemeResult| hourly_means(&savings_percent_series(&r.total_power_w(), base), dt);
    let opt = series(&runs.optimal);
    let soi = series(&runs.soi);
    let soik = series(&runs.soi_k);
    let bh2 = series(&runs.bh2_k);
    for hour in 0..opt.len() {
        t.push_row(vec![hour as f64, opt[hour], soi[hour], soik[hour], bh2[hour]]);
    }
    t
}

/// Fig. 7: hourly number of powered gateways per aggregation scheme.
pub fn fig7(h: &Harness, runs: &MainRuns) -> FigureData {
    let dt = h.scenario.sample_period.as_secs_f64();
    let mut t = FigureData::new(
        "fig7",
        "number of online gateways, hourly means",
        vec!["hour".into(), "soi".into(), "bh2".into(), "bh2_no_backup".into(), "optimal".into()],
    );
    let series = |r: &SchemeResult| hourly_means(&r.powered_gateways, dt);
    let soi = series(&runs.soi);
    let bh2 = series(&runs.bh2_k);
    let bh2nb = series(&runs.bh2_nb_k);
    let opt = series(&runs.optimal);
    for hour in 0..soi.len() {
        t.push_row(vec![hour as f64, soi[hour], bh2[hour], bh2nb[hour], opt[hour]]);
    }
    t
}

/// Fig. 8: hourly ISP share of the total savings.
pub fn fig8(h: &Harness, runs: &MainRuns) -> FigureData {
    let dt = h.scenario.sample_period.as_secs_f64();
    let mut t = FigureData::new(
        "fig8",
        "ISP share of total energy savings [%], hourly means",
        vec![
            "hour".into(),
            "optimal".into(),
            "soi".into(),
            "soi_kswitch".into(),
            "bh2_kswitch".into(),
        ],
    );
    let series = |r: &SchemeResult| {
        let shares = isp_share_percent_series(
            &r.user_power_w,
            &r.isp_power_w,
            runs.base_user_w,
            runs.base_isp_w,
        );
        let filled: Vec<f64> = shares.into_iter().map(|s| s.unwrap_or(0.0)).collect();
        hourly_means(&filled, dt)
    };
    let opt = series(&runs.optimal);
    let soi = series(&runs.soi);
    let soik = series(&runs.soi_k);
    let bh2 = series(&runs.bh2_k);
    for hour in 0..opt.len() {
        t.push_row(vec![hour as f64, opt[hour], soi[hour], soik[hour], bh2[hour]]);
    }
    t
}

/// Renders a CDF at fixed quantile grid points for tabular output.
fn cdf_rows(cdf: &Cdf, xs: &[f64]) -> Vec<f64> {
    xs.iter().map(|&x| cdf.fraction_leq(x)).collect()
}

/// Fig. 9a: CDF of flow-completion-time increase vs no-sleep.
pub fn fig9a(runs: &MainRuns) -> FigureData {
    let xs: Vec<f64> = vec![0.0, 10.0, 25.0, 50.0, 100.0, 200.0, 400.0, 600.0];
    let mut t = FigureData::new(
        "fig9a",
        "CDF of completion-time increase vs no-sleep [% -> P(X<=x)]",
        vec!["variation_pct".into(), "soi".into(), "bh2".into(), "bh2_no_backup".into()],
    );
    let soi = cdf_rows(&completion_variation_cdf(&runs.soi, &runs.no_sleep), &xs);
    let bh2 = cdf_rows(&completion_variation_cdf(&runs.bh2_k, &runs.no_sleep), &xs);
    let bh2nb = cdf_rows(&completion_variation_cdf(&runs.bh2_nb_k, &runs.no_sleep), &xs);
    for (i, &x) in xs.iter().enumerate() {
        t.push_row(vec![x, soi[i], bh2[i], bh2nb[i]]);
    }
    t
}

/// Fig. 9b: CDF of gateway online-time variation vs SoI.
pub fn fig9b(runs: &MainRuns) -> FigureData {
    let xs: Vec<f64> = vec![-100.0, -75.0, -50.0, -25.0, 0.0, 25.0, 50.0, 75.0, 100.0];
    let mut t = FigureData::new(
        "fig9b",
        "CDF of gateway online-time variation vs SoI [% -> P(X<=x)]",
        vec!["variation_pct".into(), "bh2".into(), "bh2_no_backup".into()],
    );
    let bh2 = cdf_rows(&online_time_variation_cdf(&runs.bh2_k, &runs.soi), &xs);
    let bh2nb = cdf_rows(&online_time_variation_cdf(&runs.bh2_nb_k, &runs.soi), &xs);
    for (i, &x) in xs.iter().enumerate() {
        t.push_row(vec![x, bh2[i], bh2nb[i]]);
    }
    t
}

/// Fig. 10: online gateways vs mean available gateways per user.
pub fn fig10(h: &Harness) -> FigureData {
    let densities: Vec<f64> = (1..=10).map(|d| d as f64).collect();
    let pts = density_sweep(&h.scenario, &densities);
    let mut t = FigureData::new(
        "fig10",
        "mean online gateways (11-19h) vs gateway density",
        vec!["mean_available".into(), "online_gateways".into()],
    );
    for p in pts {
        t.push_row(vec![p.mean_available, p.online_gateways]);
    }
    t
}

/// Fig. 12: testbed online APs over the 30-minute window.
pub fn fig12(h: &Harness) -> FigureData {
    let r = run_testbed(&h.scenario, &TestbedConfig::default());
    let mut t = FigureData::new(
        "fig12",
        "testbed: online APs per minute, 15:00-15:30 (9 gateways)",
        vec!["minute".into(), "soi".into(), "bh2".into()],
    );
    for (m, (s, b)) in r.soi_online_per_min.iter().zip(&r.bh2_online_per_min).enumerate() {
        t.push_row(vec![(m + 1) as f64, *s, *b]);
    }
    t
}

/// Summary line of the testbed run (paper: BH2 sleeps 5.46/9, SoI 3.72/9).
pub fn fig12_summary(h: &Harness) -> FigureData {
    let r = run_testbed(&h.scenario, &TestbedConfig::default());
    let mut t = FigureData::new(
        "fig12-summary",
        "testbed mean sleeping APs of 9 (paper: BH2 5.46, SoI 3.72)",
        vec!["soi_sleeping".into(), "bh2_sleeping".into()],
    );
    t.push_row(vec![r.soi_mean_sleeping, r.bh2_mean_sleeping]);
    t
}

/// Fig. 14: crosstalk speedup vs number of inactive lines, four configs.
pub fn fig14(seed: u64) -> FigureData {
    let mut rng = SimRng::new(seed).fork("fig14");
    let mut t = FigureData::new(
        "fig14",
        "mean per-line speedup vs inactive lines [%] (std in ±columns)",
        vec![
            "inactive".into(),
            "p62_mix".into(),
            "p62_mix_std".into(),
            "p62_600".into(),
            "p62_600_std".into(),
            "p30_mix".into(),
            "p30_mix_std".into(),
            "p30_600".into(),
            "p30_600_std".into(),
        ],
    );
    let cfg = BundleConfig::default();
    let results: Vec<_> =
        CrosstalkExperiment::paper_set().into_iter().map(|e| e.run(&cfg, &mut rng)).collect();
    let steps = results[0].1.len();
    for si in 0..steps {
        let mut row = vec![results[0].1[si].inactive as f64];
        for (_, pts) in &results {
            row.push(pts[si].mean_speedup_pct);
            row.push(pts[si].std_pct);
        }
        t.push_row(row);
    }
    t
}

/// The Fig. 14 baselines (paper: 41.3, 43.7, 27.8, 29.7 Mbps).
pub fn fig14_baselines(seed: u64) -> FigureData {
    let mut rng = SimRng::new(seed).fork("fig14");
    let cfg = BundleConfig::default();
    let mut t = FigureData::new(
        "fig14-baselines",
        "all-active mean sync rates [Mbps] (paper: 41.3/43.7/27.8/29.7)",
        vec!["baseline_mbps".into()],
    );
    let mut labels = Vec::new();
    for e in CrosstalkExperiment::paper_set() {
        let (baseline, _) = e.run(&cfg, &mut rng);
        labels.push(e.label());
        t.push_row(vec![baseline / 1e6]);
    }
    t.with_row_labels(labels)
}

/// Fig. 15: per-card attenuation distribution summary of the synthetic
/// production DSLAM.
pub fn fig15(seed: u64) -> FigureData {
    let mut rng = SimRng::new(seed).fork("fig15");
    let samples = sample_attenuations(&AttenuationConfig::default(), &mut rng);
    let mut t = FigureData::new(
        "fig15",
        "attenuation distribution per line card [dB]",
        vec!["card".into(), "mean_db".into(), "std_db".into()],
    );
    for (i, (mean, std)) in samples.card_summaries().iter().enumerate() {
        t.push_row(vec![(i + 1) as f64, *mean, *std]);
    }
    t
}

/// Completion-time quantile table per scheme, read from the merged
/// streaming sketches (`CompletionStats`) rather than per-flow vectors —
/// the figure backend works unchanged at mega-city scale, where only the
/// sketch survives. The `exact` column is 1 while the pooled flow count
/// sits under the scenario's `completion_cutoff` (all paper presets).
pub fn completion_table(runs: &MainRuns) -> FigureData {
    let mut t = FigureData::new(
        "completion",
        "flow completion-time quantiles per scheme [s] (streaming sketch)",
        vec![
            "p25".into(),
            "p50".into(),
            "p75".into(),
            "p90".into(),
            "p95".into(),
            "p99".into(),
            "exact".into(),
        ],
    );
    let entries: Vec<(&str, &SchemeResult)> = vec![
        ("no-sleep", &runs.no_sleep),
        ("soi", &runs.soi),
        ("soi+k", &runs.soi_k),
        ("bh2+k", &runs.bh2_k),
        ("bh2-nb+k", &runs.bh2_nb_k),
        ("bh2+full", &runs.bh2_full),
    ];
    let mut labels = Vec::new();
    for (name, r) in entries {
        let Some(q) = insomnia_core::completion_quantiles(&r.pooled_completion()) else {
            continue;
        };
        labels.push(name.to_string());
        t.push_row(vec![q.p25, q.p50, q.p75, q.p90, q.p95, q.p99, f64::from(u8::from(q.exact))]);
    }
    t.with_row_labels(labels)
}

/// §5.2.3's table: average online line cards during peak hours.
pub fn cards_table(runs: &MainRuns) -> FigureData {
    let mut t = FigureData::new(
        "cards",
        "mean awake line cards 11-19h (paper: Opt 1, BH2+full 2, BH2+k 2.88, SoI+full 3, SoI+k 3.74, SoI 3.99)",
        vec!["awake_cards".into()],
    );
    let entries: Vec<(&str, &SchemeResult)> = vec![
        ("optimal", &runs.optimal),
        ("bh2+full", &runs.bh2_full),
        ("bh2+k", &runs.bh2_k),
        ("soi+full", &runs.soi_full),
        ("soi+k", &runs.soi_k),
        ("soi", &runs.soi),
    ];
    let mut labels = Vec::new();
    for (name, r) in entries {
        labels.push(name.to_string());
        t.push_row(vec![insomnia_core::window_mean(&r.awake_cards, r.sample_period_s, 11.0, 19.0)]);
    }
    t.with_row_labels(labels)
}

/// Sleep-policy comparison: the paper's fixed-timeout SoI against the
/// multi-doze ladder and the adaptive per-gateway timeout, same scenario,
/// same no-sleep baseline. `doze_descents` counts delivered doze-ladder
/// descents (0 for the policies that sleep straight to the deepest level).
pub fn doze_table(h: &Harness) -> FigureData {
    let cfg = &h.scenario;
    let world = build_sharded_world(cfg);
    let threads = insomnia_simcore::default_threads();
    let run = |spec| run_scheme_sharded(cfg, spec, &world, cfg.seed, threads);
    let base_user_w = cfg.power.no_sleep_user_w(world.n_gateways());
    let base_isp_w =
        cfg.power.no_sleep_isp_w_sharded(world.n_gateways(), cfg.dslam.n_cards, world.n_shards());
    let mut t = FigureData::new(
        "doze",
        "sleep-policy comparison: fixed SoI vs multi-doze ladder vs adaptive-SOI",
        vec![
            "mean_savings_pct".into(),
            "peak_savings_pct".into(),
            "mean_gw".into(),
            "wakes_per_gw".into(),
            "doze_descents".into(),
        ],
    );
    let mut labels = Vec::new();
    for (name, spec) in [
        ("soi", SchemeSpec::soi()),
        ("multi-doze", SchemeSpec::multi_doze()),
        ("adaptive-soi", SchemeSpec::adaptive_soi()),
    ] {
        let r = run(spec);
        let s = summarize(&r, base_user_w, base_isp_w);
        labels.push(name.to_string());
        t.push_row(vec![
            s.mean_savings_pct,
            s.peak_savings_pct,
            s.mean_gateways,
            r.mean_wake_count,
            r.counters.doze_ticks as f64,
        ]);
    }
    t.with_row_labels(labels)
}

/// Sensitivity ablation (§5.1): BH2 savings across the parameter axes the
/// paper tuned (thresholds, idle timeout, wake time, epoch).
pub fn ablation(h: &Harness) -> FigureData {
    let mut cfg = h.scenario.clone();
    cfg.repetitions = 1; // one run per point; the sweep is the signal
    let mut t = FigureData::new(
        "ablation",
        "BH2+k sensitivity: day-average savings [%] per parameter value",
        vec!["value".into(), "mean_savings_pct".into(), "peak_gw".into(), "wakes".into()],
    );
    let mut labels = Vec::new();
    let push = |name: &str,
                pts: Vec<insomnia_core::SensitivityPoint>,
                t: &mut FigureData,
                labels: &mut Vec<String>| {
        for p in pts {
            labels.push(name.to_string());
            t.push_row(vec![p.value, p.mean_savings_pct, p.peak_gateways, p.total_wakes]);
        }
    };
    push(
        "low_thresh",
        insomnia_core::sweep_low_threshold(&cfg, &[0.05, 0.10, 0.20]),
        &mut t,
        &mut labels,
    );
    push(
        "high_thresh",
        insomnia_core::sweep_high_threshold(&cfg, &[0.30, 0.50, 0.80]),
        &mut t,
        &mut labels,
    );
    push(
        "idle_timeout_s",
        insomnia_core::sweep_idle_timeout(&cfg, &[30, 60, 120]),
        &mut t,
        &mut labels,
    );
    push("wake_time_s", insomnia_core::sweep_wake_time(&cfg, &[30, 60, 180]), &mut t, &mut labels);
    push("epoch_s", insomnia_core::sweep_epoch(&cfg, &[60, 150, 600]), &mut t, &mut labels);
    t.with_row_labels(labels)
}

/// Headline summary (§5.4): savings, gateway counts, ISP share, TWh.
pub fn summary(runs: &MainRuns) -> FigureData {
    let mut t = FigureData::new(
        "summary",
        "headline metrics per scheme (paper: BH2+k 66% avg, >=50% peak, 2/3 user 1/3 ISP, 33 TWh)",
        vec![
            "mean_savings_pct".into(),
            "peak_savings_pct".into(),
            "mean_gw".into(),
            "peak_gw".into(),
            "peak_cards".into(),
            "isp_share_pct".into(),
            "world_twh_yr".into(),
        ],
    );
    let world = WorldModel::default();
    let power = PowerModel::default();
    let mut labels = Vec::new();
    for r in [&runs.soi, &runs.soi_k, &runs.bh2_nb_k, &runs.bh2_k, &runs.bh2_full, &runs.optimal] {
        let s = summarize(r, runs.base_user_w, runs.base_isp_w);
        let twh = world.savings_twh_per_year(&power, (s.mean_savings_pct / 100.0).clamp(0.0, 1.0));
        labels.push(s.name.clone());
        t.push_row(vec![
            s.mean_savings_pct,
            s.peak_savings_pct,
            s.mean_gateways,
            s.peak_gateways,
            s.peak_cards,
            s.isp_share_pct.unwrap_or(0.0),
            twh,
        ]);
    }
    t.with_row_labels(labels)
}
