//! The JSONL-fed figure backend: energy / completion / online-time tables
//! rebuilt from a batch record instead of re-simulating.
//!
//! `figures --from-jsonl out.jsonl` feeds a finished `insomnia run` output
//! straight into the same [`FigureData`] tables the simulation-backed
//! harness prints. At giga/tera-metro scale a single scheme run is
//! minutes-to-hours of compute; its JSONL record already carries every
//! distributional summary the headline tables need (energy and savings,
//! the completion-quantile grid, the streamed per-gateway online-time
//! grid, per-shard spreads), so plotting must never cost a re-simulation.
//!
//! The parser is the batch runner's own [`JobRecord`] deserializer —
//! whatever schema tier a record was written with (unsharded, sharded,
//! sharded + online grid) is reflected in which tables gain rows.

use insomnia_core::FigureData;
use insomnia_scenarios::JobRecord;
use insomnia_simcore::{SimError, SimResult};

/// One parsed batch record set, ready to be rendered as tables.
#[derive(Debug, Clone)]
pub struct JsonlReport {
    /// Records in file order.
    pub records: Vec<JobRecord>,
}

/// Parses a batch JSONL text into a report (empty lines skipped).
pub fn parse_jsonl(name: &str, text: &str) -> SimResult<JsonlReport> {
    let mut records = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec: JobRecord = serde_json::from_str(line).map_err(|e| {
            SimError::InvalidInput(format!("{name}:{}: not a batch record: {e}", lineno + 1))
        })?;
        records.push(rec);
    }
    if records.is_empty() {
        return Err(SimError::InvalidInput(format!("{name}: no records (empty batch output?)")));
    }
    Ok(JsonlReport { records })
}

impl JsonlReport {
    /// Row label of a record: the compare gate's identity key.
    fn label(r: &JobRecord) -> String {
        format!("{}/{}#{}", r.scenario, r.scheme, r.seed_index)
    }

    /// The energy/savings headline table — one row per record, the
    /// JSONL-fed equivalent of the simulation-backed `summary` table.
    pub fn energy_table(&self) -> FigureData {
        let mut t = FigureData::new(
            "energy",
            "energy and savings per (scenario, scheme, seed) record [from JSONL]",
            vec![
                "mean_savings_pct".into(),
                "peak_savings_pct".into(),
                "energy_kwh".into(),
                "mean_gw".into(),
                "peak_gw".into(),
                "isp_share_pct".into(),
                "wakes_per_gw".into(),
            ],
        );
        let mut labels = Vec::new();
        for r in &self.records {
            labels.push(Self::label(r));
            t.push_row(vec![
                r.mean_savings_pct,
                r.peak_savings_pct,
                r.energy_kwh,
                r.mean_gateways,
                r.peak_gateways,
                // Absent share (nothing saved, e.g. no-sleep) is a gap in
                // the data, not a zero-percent share.
                r.isp_share_pct.unwrap_or(f64::NAN),
                r.mean_wake_count,
            ]);
        }
        t.with_row_labels(labels)
    }

    /// Completion-time quantiles per record. Sharded records contribute
    /// the full merged-sketch grid; unsharded (frozen-schema) records fall
    /// back to their `completion_p50_s`/`completion_p95_s` tail. Records
    /// with no completed flow (e.g. the Optimal scheme) are skipped.
    pub fn completion_table(&self) -> FigureData {
        let mut t = FigureData::new(
            "completion",
            "flow completion-time quantiles per record [s, from JSONL]",
            vec![
                "p25".into(),
                "p50".into(),
                "p75".into(),
                "p90".into(),
                "p95".into(),
                "p99".into(),
                "completed_frac".into(),
                "exact".into(),
            ],
        );
        let mut labels = Vec::new();
        for r in &self.records {
            let frac = r.completed_frac.unwrap_or(0.0);
            if let Some(q) = &r.completion_quantiles {
                labels.push(Self::label(r));
                t.push_row(vec![
                    q.p25,
                    q.p50,
                    q.p75,
                    q.p90,
                    q.p95,
                    q.p99,
                    frac,
                    f64::from(u8::from(q.exact)),
                ]);
            } else if let (Some(p50), Some(p95)) = (r.completion_p50_s, r.completion_p95_s) {
                // Unsharded schema: only the frozen tail exists; columns
                // it cannot answer — the wider grid, and exactness, which
                // the record genuinely does not carry (a shards = 1 run
                // with completion_cutoff = 0 streams its tail through the
                // sketch) — read as NaN, not as fabricated values.
                labels.push(Self::label(r));
                t.push_row(vec![f64::NAN, p50, f64::NAN, f64::NAN, p95, f64::NAN, frac, f64::NAN]);
            }
        }
        t.with_row_labels(labels)
    }

    /// Per-gateway online-time quantiles per record — only records whose
    /// scenario streamed online time (`online_cutoff = 0`, e.g.
    /// tera-metro) carry the grid.
    pub fn online_time_table(&self) -> FigureData {
        let mut t = FigureData::new(
            "online-time",
            "per-gateway online-time quantiles per record [s, from JSONL]",
            vec![
                "gateways".into(),
                "mean_s".into(),
                "p25".into(),
                "p50".into(),
                "p75".into(),
                "p90".into(),
                "p95".into(),
                "p99".into(),
                "exact".into(),
            ],
        );
        let mut labels = Vec::new();
        for r in &self.records {
            if let Some(q) = &r.online_time_quantiles {
                labels.push(Self::label(r));
                t.push_row(vec![
                    q.gateways as f64,
                    q.mean_s,
                    q.p25,
                    q.p50,
                    q.p75,
                    q.p90,
                    q.p95,
                    q.p99,
                    f64::from(u8::from(q.exact)),
                ]);
            }
        }
        t.with_row_labels(labels)
    }

    /// Cross-shard spread per sharded record: how evenly the energy and
    /// gateway activity distribute over the DSLAM neighborhoods.
    pub fn shards_table(&self) -> FigureData {
        let mut t = FigureData::new(
            "shards",
            "per-shard energy spread per sharded record [from JSONL]",
            vec![
                "shards".into(),
                "min_kwh".into(),
                "mean_kwh".into(),
                "max_kwh".into(),
                "mean_gw_per_shard".into(),
                "mean_wakes_per_gw".into(),
            ],
        );
        let mut labels = Vec::new();
        for r in &self.records {
            let Some(shards) = r.shard_summaries.as_ref().filter(|s| !s.is_empty()) else {
                continue;
            };
            let n = shards.len() as f64;
            let kwh: Vec<f64> = shards.iter().map(|s| s.energy_kwh).collect();
            labels.push(Self::label(r));
            t.push_row(vec![
                n,
                kwh.iter().cloned().fold(f64::INFINITY, f64::min),
                kwh.iter().sum::<f64>() / n,
                kwh.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                shards.iter().map(|s| s.mean_gateways).sum::<f64>() / n,
                shards.iter().map(|s| s.mean_wake_count).sum::<f64>() / n,
            ]);
        }
        t.with_row_labels(labels)
    }

    /// Every table the record set can answer, skipping empty ones (an
    /// unsharded batch has no shard or online-time rows).
    pub fn tables(&self) -> Vec<FigureData> {
        [
            self.energy_table(),
            self.completion_table(),
            self.online_time_table(),
            self.shards_table(),
        ]
        .into_iter()
        .filter(|t| !t.rows.is_empty())
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHARDED: &str = r#"{"scenario":"m","scheme":"soi","seed_index":0,"seed":7,"n_gateways":20,"n_clients":136,"n_flows":1000,"mean_savings_pct":40.0,"peak_savings_pct":10.0,"mean_gateways":9.5,"peak_gateways":18.0,"peak_cards":2.0,"isp_share_pct":30.0,"energy_kwh":5.5,"mean_wake_count":12.0,"completion_p50_s":0.1,"completion_p95_s":2.0,"completed_frac":0.99,"shards":2,"shard_summaries":[{"n_clients":68,"n_gateways":10,"n_flows":500,"energy_kwh":2.5,"mean_gateways":4.5,"mean_wake_count":11.0},{"n_clients":68,"n_gateways":10,"n_flows":500,"energy_kwh":3.0,"mean_gateways":5.0,"mean_wake_count":13.0}],"completion_quantiles":{"exact":false,"completed":990,"p25":0.05,"p50":0.1,"p75":0.5,"p90":1.0,"p95":2.0,"p99":4.0},"online_time_quantiles":{"exact":false,"gateways":20,"mean_s":30000.0,"p25":1000.0,"p50":20000.0,"p75":50000.0,"p90":70000.0,"p95":80000.0,"p99":86000.0}}"#;

    const UNSHARDED: &str = r#"{"scenario":"p","scheme":"bh2","seed_index":0,"seed":7,"n_gateways":40,"n_clients":272,"n_flows":2000,"mean_savings_pct":59.0,"peak_savings_pct":45.0,"mean_gateways":9.8,"peak_gateways":15.0,"peak_cards":2.8,"isp_share_pct":43.5,"energy_kwh":8.0,"mean_wake_count":60.0,"completion_p50_s":0.2,"completion_p95_s":3.0,"completed_frac":1.0}"#;

    #[test]
    fn sharded_records_fill_every_table() {
        let report = parse_jsonl("test", SHARDED).unwrap();
        let tables = report.tables();
        let names: Vec<&str> = tables.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["energy", "completion", "online-time", "shards"]);
        let energy = &tables[0];
        assert_eq!(energy.rows[0][0], 40.0);
        assert_eq!(energy.rows[0][2], 5.5);
        let completion = &tables[1];
        assert_eq!(completion.rows[0][1], 0.1, "p50 from the grid");
        assert_eq!(completion.rows[0][7], 0.0, "sketch-mode grid is not exact");
        let online = &tables[2];
        assert_eq!(online.rows[0][0], 20.0);
        assert_eq!(online.rows[0][1], 30_000.0);
        let shards = &tables[3];
        assert_eq!(shards.rows[0][0], 2.0);
        assert_eq!(shards.rows[0][1], 2.5);
        assert_eq!(shards.rows[0][3], 3.0);
    }

    #[test]
    fn unsharded_records_fall_back_to_the_frozen_tail() {
        let report = parse_jsonl("test", UNSHARDED).unwrap();
        let tables = report.tables();
        let names: Vec<&str> = tables.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["energy", "completion"], "no shard/online rows to report");
        let completion = &tables[1];
        assert_eq!(completion.rows[0][1], 0.2);
        assert_eq!(completion.rows[0][4], 3.0);
        assert!(completion.rows[0][0].is_nan(), "grid columns the tail cannot answer are NaN");
        assert!(completion.rows[0][7].is_nan(), "exactness is not recorded unsharded");
    }

    #[test]
    fn garbage_and_empty_inputs_are_rejected() {
        assert!(parse_jsonl("x", "").is_err());
        assert!(parse_jsonl("x", "not json\n").is_err());
        assert!(parse_jsonl("x", "{\"scenario\": 3}\n").is_err(), "wrong field types");
    }
}
