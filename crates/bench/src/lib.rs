//! # insomnia-bench
//!
//! The benchmark/figure harness of the reproduction: [`figures`] builds the
//! data behind every figure and table in the paper's evaluation; the
//! `figures` binary prints them; the Criterion benches under `benches/`
//! regenerate each experiment as a measured benchmark.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod figures;

pub use figures::{run_main, Harness, MainRuns};
