//! # insomnia-bench
//!
//! The benchmark/figure harness of the reproduction: [`figures`] builds the
//! data behind every figure and table in the paper's evaluation; the
//! `figures` binary prints them (either by simulating, or — via
//! `--from-jsonl` and [`from_jsonl`] — by replaying a finished batch
//! record, so giga/tera-metro runs are plotted without re-simulating); the
//! Criterion benches under `benches/` regenerate each experiment as a
//! measured benchmark.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod figures;
pub mod from_jsonl;

pub use figures::{run_main, Harness, MainRuns};
pub use from_jsonl::{parse_jsonl, JsonlReport};
