//! Regenerates the paper's figures and tables as data.
//!
//! Usage:
//!   figures [--quick] [--csv DIR] [fig2 fig3 ... fig15 cards summary | all]
//!   figures --from-jsonl out.jsonl [--csv DIR]
//!   figures --telemetry run.telemetry.jsonl
//!
//! With `--quick` the main scenario runs 2 repetitions instead of 10.
//! With `--from-jsonl` nothing is simulated: the energy / completion /
//! online-time / shard tables are rebuilt from a finished `insomnia run`
//! batch record — the only affordable path for giga/tera-metro outputs.
//! With `--telemetry` the run's telemetry sidecar (from
//! `insomnia run --telemetry`) is rendered as a phase-breakdown profile,
//! same output as `insomnia profile`.

use insomnia_bench::figures as fig;
use insomnia_bench::Harness;
use insomnia_core::FigureData;
use std::collections::BTreeSet;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv_dir = args.iter().position(|a| a == "--csv").and_then(|i| args.get(i + 1)).cloned();
    let from_jsonl =
        args.iter().position(|a| a == "--from-jsonl").and_then(|i| args.get(i + 1)).cloned();
    if args.iter().any(|a| a == "--from-jsonl") && from_jsonl.is_none() {
        eprintln!("figures: --from-jsonl needs a batch JSONL file path");
        return ExitCode::FAILURE;
    }
    let telemetry =
        args.iter().position(|a| a == "--telemetry").and_then(|i| args.get(i + 1)).cloned();
    if args.iter().any(|a| a == "--telemetry") && telemetry.is_none() {
        eprintln!("figures: --telemetry needs a sidecar JSONL file path");
        return ExitCode::FAILURE;
    }
    if let Some(path) = telemetry {
        return match profile_from_sidecar(&path) {
            Ok(rendered) => {
                print!("{rendered}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("figures: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if let Some(path) = from_jsonl {
        let outputs = match tables_from_jsonl(&path) {
            Ok(outputs) => outputs,
            Err(e) => {
                eprintln!("figures: {e}");
                return ExitCode::FAILURE;
            }
        };
        emit(&outputs, csv_dir.as_deref());
        return ExitCode::SUCCESS;
    }
    let mut wanted: BTreeSet<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| Some(a.as_str()) != csv_dir.as_deref())
        .cloned()
        .collect();
    if wanted.is_empty() || wanted.contains("all") {
        wanted = [
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9a",
            "fig9b",
            "fig10",
            "fig12",
            "fig14",
            "fig15",
            "cards",
            "completion",
            "summary",
            "ablation",
            "doze",
        ]
        .into_iter()
        .map(String::from)
        .collect();
    }

    let h = if quick { Harness::quick() } else { Harness::paper() };
    let seed = h.scenario.seed;
    let needs_main = ["fig6", "fig7", "fig8", "fig9a", "fig9b", "cards", "completion", "summary"]
        .iter()
        .any(|f| wanted.contains(*f));
    let runs = if needs_main {
        eprintln!("running main scenario ({} repetitions × 8 schemes)...", h.scenario.repetitions);
        Some(fig::run_main(&h))
    } else {
        None
    };

    let mut outputs: Vec<FigureData> = Vec::new();
    for name in &wanted {
        match name.as_str() {
            "fig2" => outputs.push(fig::fig2(seed)),
            "fig3" => outputs.push(fig::fig3(&h)),
            "fig4" => outputs.push(fig::fig4(&h)),
            "fig5" => outputs.push(fig::fig5()),
            "fig6" => outputs.push(fig::fig6(&h, runs.as_ref().expect("main"))),
            "fig7" => outputs.push(fig::fig7(&h, runs.as_ref().expect("main"))),
            "fig8" => outputs.push(fig::fig8(&h, runs.as_ref().expect("main"))),
            "fig9a" => outputs.push(fig::fig9a(runs.as_ref().expect("main"))),
            "fig9b" => outputs.push(fig::fig9b(runs.as_ref().expect("main"))),
            "fig10" => outputs.push(fig::fig10(&h)),
            "fig12" => {
                outputs.push(fig::fig12(&h));
                outputs.push(fig::fig12_summary(&h));
            }
            "fig14" => {
                outputs.push(fig::fig14_baselines(seed));
                outputs.push(fig::fig14(seed));
            }
            "fig15" => outputs.push(fig::fig15(seed)),
            "cards" => outputs.push(fig::cards_table(runs.as_ref().expect("main"))),
            "completion" => outputs.push(fig::completion_table(runs.as_ref().expect("main"))),
            "ablation" => outputs.push(fig::ablation(&h)),
            "doze" => outputs.push(fig::doze_table(&h)),
            "summary" => outputs.push(fig::summary(runs.as_ref().expect("main"))),
            other => eprintln!("unknown figure: {other}"),
        }
    }

    emit(&outputs, csv_dir.as_deref());
    ExitCode::SUCCESS
}

/// Reads a telemetry sidecar and renders the phase-breakdown profile.
fn profile_from_sidecar(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    Ok(insomnia_telemetry::ProfileReport::from_jsonl(&text)?.render())
}

/// Reads a batch JSONL file and rebuilds its figure tables.
fn tables_from_jsonl(path: &str) -> Result<Vec<FigureData>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let report = insomnia_bench::parse_jsonl(path, &text).map_err(|e| e.to_string())?;
    eprintln!(
        "rebuilding tables from {} record(s) in {path} (no simulation)",
        report.records.len()
    );
    Ok(report.tables())
}

fn emit(outputs: &[FigureData], csv_dir: Option<&str>) {
    for data in outputs {
        println!("{data}");
        if let Some(dir) = csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            let path = format!("{dir}/{}.csv", data.name);
            std::fs::write(&path, data.to_csv()).expect("write csv");
            eprintln!("wrote {path}");
        }
    }
}
