//! Regenerates the paper's figures and tables as data.
//!
//! Usage:
//!   figures [--quick] [--csv DIR] [fig2 fig3 ... fig15 cards summary | all]
//!
//! With `--quick` the main scenario runs 2 repetitions instead of 10.

use insomnia_bench::figures as fig;
use insomnia_bench::Harness;
use insomnia_core::FigureData;
use std::collections::BTreeSet;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv_dir = args.iter().position(|a| a == "--csv").and_then(|i| args.get(i + 1)).cloned();
    let mut wanted: BTreeSet<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| Some(a.as_str()) != csv_dir.as_deref())
        .cloned()
        .collect();
    if wanted.is_empty() || wanted.contains("all") {
        wanted = [
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9a",
            "fig9b",
            "fig10",
            "fig12",
            "fig14",
            "fig15",
            "cards",
            "completion",
            "summary",
            "ablation",
        ]
        .into_iter()
        .map(String::from)
        .collect();
    }

    let h = if quick { Harness::quick() } else { Harness::paper() };
    let seed = h.scenario.seed;
    let needs_main = ["fig6", "fig7", "fig8", "fig9a", "fig9b", "cards", "completion", "summary"]
        .iter()
        .any(|f| wanted.contains(*f));
    let runs = if needs_main {
        eprintln!("running main scenario ({} repetitions × 8 schemes)...", h.scenario.repetitions);
        Some(fig::run_main(&h))
    } else {
        None
    };

    let mut outputs: Vec<FigureData> = Vec::new();
    for name in &wanted {
        match name.as_str() {
            "fig2" => outputs.push(fig::fig2(seed)),
            "fig3" => outputs.push(fig::fig3(&h)),
            "fig4" => outputs.push(fig::fig4(&h)),
            "fig5" => outputs.push(fig::fig5()),
            "fig6" => outputs.push(fig::fig6(&h, runs.as_ref().expect("main"))),
            "fig7" => outputs.push(fig::fig7(&h, runs.as_ref().expect("main"))),
            "fig8" => outputs.push(fig::fig8(&h, runs.as_ref().expect("main"))),
            "fig9a" => outputs.push(fig::fig9a(runs.as_ref().expect("main"))),
            "fig9b" => outputs.push(fig::fig9b(runs.as_ref().expect("main"))),
            "fig10" => outputs.push(fig::fig10(&h)),
            "fig12" => {
                outputs.push(fig::fig12(&h));
                outputs.push(fig::fig12_summary(&h));
            }
            "fig14" => {
                outputs.push(fig::fig14_baselines(seed));
                outputs.push(fig::fig14(seed));
            }
            "fig15" => outputs.push(fig::fig15(seed)),
            "cards" => outputs.push(fig::cards_table(runs.as_ref().expect("main"))),
            "completion" => outputs.push(fig::completion_table(runs.as_ref().expect("main"))),
            "ablation" => outputs.push(fig::ablation(&h)),
            "summary" => outputs.push(fig::summary(runs.as_ref().expect("main"))),
            other => eprintln!("unknown figure: {other}"),
        }
    }

    for data in &outputs {
        println!("{data}");
        if let Some(dir) = &csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            let path = format!("{dir}/{}.csv", data.name);
            std::fs::write(&path, data.to_csv()).expect("write csv");
            eprintln!("wrote {path}");
        }
    }
}
