//! k-switch dimensioning with Eq. (2): "how big must the HDF switches be?"
//!
//! Given a line-card size `m` and an expected per-line activity probability
//! `p` (what BH2 achieves at your site), this example prints the probability
//! that each card of a batch can sleep, for several switch sizes — the
//! paper's Fig. 5 analysis as an operator tool — and cross-checks the
//! analytic curve against a Monte-Carlo simulation of the packing fabric.
//!
//! ```sh
//! cargo run --release --example kswitch_planner
//! ```

use insomnia::access::{
    expected_sleeping_cards, full_switch_sleeping_cards, p_card_sleeps, p_card_sleeps_monte_carlo,
    p_card_sleeps_no_switch,
};
use insomnia::simcore::SimRng;

fn main() {
    let m = 24; // modems per line card (the paper's Fig. 5 setting)
    let mut rng = SimRng::new(7);

    for p in [0.5, 0.25] {
        println!("== line activity p = {p} (BH2 leaves {:.0}% of lines off)", (1.0 - p) * 100.0);
        println!(
            "   without switching, P{{card sleeps}} = (1-p)^m = {:.6}",
            p_card_sleeps_no_switch(m, p)
        );
        for k in [2u32, 4, 8] {
            print!("   {k}-switch: P(card l sleeps) =");
            for l in 1..=k.min(4) {
                print!(" l{l}:{:.3}", p_card_sleeps(l, k, m, p));
            }
            let expected = expected_sleeping_cards(k, m, p);
            println!("  => E[sleeping cards per batch of {k}] = {expected:.2}");
        }
        // Monte-Carlo sanity check for the 8-switch, second card.
        let analytic = p_card_sleeps(2, 8, m, p);
        let mc = p_card_sleeps_monte_carlo(2, 8, m, p, 200_000, &mut rng);
        println!("   cross-check l=2,k=8: analytic {analytic:.4} vs Monte-Carlo {mc:.4}");
        // Upper bound: the idealized full switch on a 48-port DSLAM.
        println!(
            "   full switch on 48 ports/12 per card: {} of 4 cards sleep\n",
            full_switch_sleeping_cards(48, 12, p)
        );
    }

    println!("Reading: with p=0.5, even an 8-switch lets the first card of each");
    println!("batch sleep 91% of the time — tiny constant-size switches capture");
    println!("most of the full-switch benefit (§4.2).");
}
