//! Ablations of BH2's design choices (the §5.1 sensitivity analysis):
//!
//! * the ambiguous §3.1 return-home rule — verbatim vs. our default
//!   resolution (see DESIGN.md),
//! * the backup requirement (0 vs 1),
//! * the load thresholds around the paper's (10%, 50%),
//! * the k-switch size against the fixed and full fabrics.
//!
//! ```sh
//! cargo run --release --example bh2_ablation
//! ```

use insomnia::core::{
    build_world, run_single, summarize, ScenarioConfig, SchemeResult, SchemeSpec,
};
use insomnia::simcore::SimRng;

fn run(cfg: &ScenarioConfig, spec: SchemeSpec, label: &str) {
    let (trace, topo) = build_world(cfg);
    let r = run_single(cfg, spec, &trace, &topo, SimRng::new(cfg.seed));
    let result = SchemeResult::from_single(spec, r);
    let base_user = cfg.power.no_sleep_user_w(topo.n_gateways());
    let base_isp = cfg.power.no_sleep_isp_w(topo.n_gateways(), cfg.dslam.n_cards);
    let s = summarize(&result, base_user, base_isp);
    println!(
        "{label:<44} save {:5.1}%  peak gw {:5.1}  peak cards {:4.2}",
        s.mean_savings_pct, s.peak_gateways, s.peak_cards
    );
}

fn main() {
    println!("-- return-home rule (the §3.1 ambiguity) --");
    let cfg = ScenarioConfig::default();
    run(&cfg, SchemeSpec::bh2_k_switch(), "default rule (stay when no candidates)");
    let mut literal = ScenarioConfig::default();
    literal.bh2.literal_return_home = true;
    run(&literal, SchemeSpec::bh2_k_switch(), "verbatim rule (return home)");

    println!("\n-- backups --");
    run(&cfg, SchemeSpec::bh2_no_backup_k_switch(), "no backup");
    run(&cfg, SchemeSpec::bh2_k_switch(), "1 backup (paper default)");

    println!("\n-- load thresholds (paper: low 10%, high 50%) --");
    for (low, high) in [(0.05, 0.50), (0.10, 0.50), (0.20, 0.50), (0.10, 0.30), (0.10, 0.80)] {
        let mut c = ScenarioConfig::default();
        c.bh2.low_threshold = low;
        c.bh2.high_threshold = high;
        run(&c, SchemeSpec::bh2_k_switch(), &format!("low {low:.2} / high {high:.2}"));
    }

    println!("\n-- ISP fabric --");
    run(&cfg, SchemeSpec::soi(), "BH2 off: SoI, fixed wiring");
    run(&cfg, SchemeSpec::bh2_k_switch(), "BH2 + 4-switches");
    let mut k2 = ScenarioConfig::default();
    k2.k_switch = 2;
    run(&k2, SchemeSpec::bh2_k_switch(), "BH2 + 2-switches");
    run(&cfg, SchemeSpec::bh2_full_switch(), "BH2 + full switch");

    println!("\nReading: the verbatim return-home rule collapses aggregation —");
    println!("see EXPERIMENTS.md, 'Known deviations', for the analysis.");
}
