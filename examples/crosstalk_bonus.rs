//! The §6 "crosstalk bonus": power off DSL lines in a 24-line VDSL2 bundle
//! and watch the remaining modems sync faster (Fig. 14).
//!
//! ```sh
//! cargo run --release --example crosstalk_bonus
//! ```

use insomnia::dslphy::{
    fixed_length_lines, BundleConfig, BundleSim, CrosstalkExperiment, LengthSetup, ServiceProfile,
};
use insomnia::simcore::SimRng;

fn main() {
    // Step 1: a direct look at one line's sync rate as disturbers go quiet.
    let sim = BundleSim::new(
        BundleConfig { sync_jitter_db: 0.0, ..BundleConfig::default() },
        ServiceProfile::mbps62(),
        fixed_length_lines(600.0),
    );
    println!("victim line 0, 600 m loop, 62 Mbps profile:");
    for n_active in [24, 18, 12, 6, 1] {
        let mut active = vec![false; 24];
        for a in active.iter_mut().take(n_active) {
            *a = true;
        }
        let rate = sim.sync_rate_bps(0, &active, None);
        println!(
            "  {:>2} lines active -> {:5.1} Mbps ({:+5.1}% vs full bundle)",
            n_active,
            rate / 1e6,
            (rate / sim.sync_rate_bps(0, &[true; 24], None) - 1.0) * 100.0
        );
    }

    // Step 2: the paper's full Fig. 14 methodology (random orders, repeated
    // measurements, mean ± std across sequences).
    println!("\nFig. 14 series (paper: ~1.1-1.2%/line, 13.6% at 12 off, ~25% at 18-20 off):");
    let mut rng = SimRng::new(2011).fork("crosstalk-example");
    for exp in CrosstalkExperiment::paper_set() {
        let (baseline, points) = exp.run(&BundleConfig::default(), &mut rng);
        println!("  {} — baseline {:.1} Mbps", exp.label(), baseline / 1e6);
        for p in points {
            println!(
                "    {:>2} inactive: {:+6.2}% ± {:4.2}",
                p.inactive, p.mean_speedup_pct, p.std_pct
            );
        }
    }
    let _ = LengthSetup::Fixed600; // re-exported for custom experiments
}
