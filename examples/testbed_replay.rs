//! The §5.3 testbed replay (Fig. 12): nine gateways across three floors,
//! each terminal limited to three reachable gateways, replaying the
//! 15:00-15:30 peak slice of the traces; BH2 (no backup) vs SoI.
//!
//! ```sh
//! cargo run --release --example testbed_replay
//! ```

use insomnia::core::{run_testbed, ScenarioConfig, TestbedConfig};

fn main() {
    let mut scenario = ScenarioConfig::default();
    scenario.repetitions = 1;
    let testbed = TestbedConfig::default();

    println!(
        "replaying {} random source APs onto {} gateways, {} independent runs...",
        testbed.n_gateways, testbed.n_gateways, testbed.runs
    );
    let r = run_testbed(&scenario, &testbed);

    println!("\nonline APs per minute (of {}):", testbed.n_gateways);
    println!("{:>6} {:>6} {:>6}", "min", "SoI", "BH2");
    for (m, (s, b)) in r.soi_online_per_min.iter().zip(&r.bh2_online_per_min).enumerate() {
        println!("{:>6} {:>6.2} {:>6.2}", m + 1, s, b);
    }
    println!(
        "\nmean sleeping APs — SoI: {:.2}, BH2: {:.2}  (paper: 3.72 vs 5.46)",
        r.soi_mean_sleeping, r.bh2_mean_sleeping
    );
    println!("BH2 consistently keeps more gateways asleep than SoI at every minute.");
}
