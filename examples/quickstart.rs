//! Quickstart: simulate one day of the paper's main scenario and print the
//! headline numbers for each scheme.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use insomnia::core::{
    build_world, run_single, savings_percent_series, summarize, ScenarioConfig, SchemeResult,
    SchemeSpec,
};
use insomnia::simcore::SimRng;

fn main() {
    // The §5.1 evaluation scenario: 272 clients, 40 gateways, 24 hours,
    // 6 Mbps ADSL, one DSLAM with 4 line cards behind 12 4-switches.
    let mut cfg = ScenarioConfig::default();
    cfg.repetitions = 1; // one repetition keeps the quickstart fast

    let (trace, topo) = build_world(&cfg);
    println!(
        "world: {} clients, {} gateways, {} flows, mean {:.1} networks in range",
        topo.n_clients(),
        topo.n_gateways(),
        trace.flows.len(),
        topo.mean_degree()
    );

    let base_user = cfg.power.no_sleep_user_w(topo.n_gateways());
    let base_isp = cfg.power.no_sleep_isp_w(topo.n_gateways(), cfg.dslam.n_cards);
    println!("no-sleep baseline draw: {:.0} W\n", base_user + base_isp);

    println!(
        "{:<28} {:>10} {:>10} {:>9} {:>10}",
        "scheme", "savings", "peak save", "mean gw", "peak cards"
    );
    for spec in [
        SchemeSpec::soi(),
        SchemeSpec::soi_k_switch(),
        SchemeSpec::bh2_k_switch(),
        SchemeSpec::optimal(),
    ] {
        let run = run_single(&cfg, spec, &trace, &topo, SimRng::new(cfg.seed));
        // Wrap the single run in the aggregate container the metrics expect.
        let result = SchemeResult::from_single(spec, run);
        let s = summarize(&result, base_user, base_isp);
        println!(
            "{:<28} {:>9.1}% {:>9.1}% {:>9.1} {:>10.2}",
            s.name, s.mean_savings_pct, s.peak_savings_pct, s.mean_gateways, s.peak_cards
        );
        // The savings series behind Fig. 6 is one call away:
        let _series = savings_percent_series(&result.total_power_w(), base_user + base_isp);
    }

    println!("\nSee `cargo run --release -p insomnia-bench --bin figures -- all`");
    println!("to regenerate every figure and table of the paper's evaluation.");
}
