//! Fig. 10: how does neighborhood density affect BH2's aggregation?
//!
//! Sweeps the mean number of gateways each user can connect to (binomial
//! connectivity matrices, as in §5.2.5) and reports the mean number of
//! online gateways during peak hours.
//!
//! ```sh
//! cargo run --release --example density_sweep
//! ```

use insomnia::core::{density_sweep, ScenarioConfig};

fn main() {
    let mut cfg = ScenarioConfig::default();
    cfg.repetitions = 2; // keep the example fast; the bench uses 10

    println!("BH2 (1 backup) + k-switch, mean online gateways 11-19h:");
    println!("{:>16} {:>18}", "mean available", "online gateways");
    let densities: Vec<f64> = (1..=10).map(f64::from).collect();
    for p in density_sweep(&cfg, &densities) {
        let bar = "#".repeat((p.online_gateways.round() as usize).min(60));
        println!("{:>16.0} {:>18.1}  {bar}", p.mean_available, p.online_gateways);
    }
    println!("\ndensity 1 = clients can only use their home gateway (SoI-like);");
    println!("already at 2 available gateways the online count drops sharply, and");
    println!("the curve flattens around 5-6 — the paper's diminishing-returns shape.");
}
