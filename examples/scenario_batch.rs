//! Scenario orchestration quickstart: run a small (scenario × scheme ×
//! seed) matrix through the parallel batch runner and print the summary.
//!
//! ```sh
//! cargo run --release --example scenario_batch
//! ```
//!
//! The same matrix is available from the command line:
//!
//! ```sh
//! cargo run --release --bin insomnia -- run \
//!     --scenario paper-default,rural-sparse --schemes soi,bh2 --seeds 2 --quick
//! ```

use insomnia::scenarios::{parse_scheme_list, run_batch, BatchRun, Registry};

fn main() {
    let registry = Registry::builtin();

    // Three registry presets over the full 24-hour day (the flash-crowd
    // surge fires at 19-22 h), one repetition each so the example
    // finishes in seconds.
    let mut scenarios = Vec::new();
    for name in ["paper-default", "flash-crowd", "no-wireless-sharing"] {
        let mut cfg = registry.resolve(name).expect("builtin preset");
        cfg.repetitions = 1;
        scenarios.push((name.to_string(), cfg));
    }

    let batch = BatchRun {
        scenarios,
        schemes: parse_scheme_list("no-sleep,soi,bh2").expect("valid schemes"),
        seeds: 1,
        threads: 0, // all cores
    };

    println!("running {} jobs...", batch.n_jobs());
    // JSONL lines go to a sink here; see `insomnia run --out` for files.
    let summary = run_batch(&batch, &mut std::io::sink()).expect("batch runs");
    print!("{}", summary.table());

    println!("\nnote how the flash crowd keeps more gateways awake in the");
    println!("evening, and how BH2 degenerates to SoI without wireless sharing.");
}
