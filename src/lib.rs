//! Facade crate: re-exports the full Insomnia reproduction API.
#![forbid(unsafe_code)]
pub use insomnia_access as access;
pub use insomnia_core as core;
pub use insomnia_dslphy as dslphy;
pub use insomnia_scenarios as scenarios;
pub use insomnia_simcore as simcore;
pub use insomnia_telemetry as telemetry;
pub use insomnia_traffic as traffic;
pub use insomnia_wireless as wireless;
